package opt

import (
	"math/rand"
	"testing"

	"lqo/internal/cost"
	"lqo/internal/data"
	"lqo/internal/datagen"
	"lqo/internal/exec"
	"lqo/internal/plan"
	"lqo/internal/query"
	"lqo/internal/stats"
)

// trueEstimator answers with exact cardinalities via the executor —
// the "oracle" estimator used to isolate enumeration quality.
type trueEstimator struct {
	cache *exec.CardCache
}

func (t *trueEstimator) Estimate(q *query.Query) float64 {
	c, err := t.cache.TrueCard(q)
	if err != nil {
		return 0
	}
	return c
}

type fixture struct {
	cat   *data.Catalog
	cs    *stats.CatalogStats
	ex    *exec.Executor
	cache *exec.CardCache
	opt   *Optimizer
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cat := datagen.StatsCEB(datagen.Config{Seed: 3, Scale: 0.05})
	cs := stats.CollectCatalog(cat, stats.Options{Seed: 3})
	ex := exec.New(cat)
	cache := exec.NewCardCache(ex)
	o := New(cat, cost.New(cs), &trueEstimator{cache})
	return &fixture{cat, cs, ex, cache, o}
}

func chainQuery() *query.Query {
	return &query.Query{
		Refs: []query.TableRef{
			{Alias: "users", Table: "users"},
			{Alias: "posts", Table: "posts"},
			{Alias: "comments", Table: "comments"},
		},
		Joins: []query.Join{
			{LeftAlias: "posts", LeftCol: "owner_user_id", RightAlias: "users", RightCol: "id"},
			{LeftAlias: "comments", LeftCol: "post_id", RightAlias: "posts", RightCol: "id"},
		},
		Preds: []query.Pred{
			{Alias: "users", Column: "reputation", Op: query.Gt, Val: data.IntVal(100)},
			{Alias: "posts", Column: "score", Op: query.Ge, Val: data.IntVal(1)},
		},
	}
}

func TestOptimizeProducesValidPlan(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	p, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	al := p.Aliases()
	if len(al) != 3 {
		t.Fatalf("plan covers %v", al)
	}
	if p.NumJoins() != 2 {
		t.Fatalf("NumJoins = %d", p.NumJoins())
	}
	if f.opt.PlansConsidered() == 0 {
		t.Fatal("no plans considered?")
	}
	// The optimized plan must execute and agree with the canonical plan.
	canonical, _ := exec.CanonicalPlan(q)
	want, err := f.ex.Run(q, canonical)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ex.Run(q, p)
	if err != nil {
		t.Fatalf("optimized plan failed to execute: %v\n%s", err, p)
	}
	if got.Count != want.Count {
		t.Fatalf("optimized plan wrong result: %d vs %d", got.Count, want.Count)
	}
}

func TestDPNotWorseThanGreedy(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	dp, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := f.opt.OptimizeGreedy(q)
	if err != nil {
		t.Fatal(err)
	}
	if dp.EstCost > greedy.EstCost*1.0001 {
		t.Fatalf("DP cost %v worse than greedy %v", dp.EstCost, greedy.EstCost)
	}
}

func TestHintsAreRespected(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	h := plan.HintSet{NoHashJoin: true, NoMergeJoin: true}
	p, err := f.opt.WithHints(h).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	p.Walk(func(n *plan.Node) {
		if n.Op == plan.HashJoin || n.Op == plan.MergeJoin {
			t.Fatalf("hint violated: %v present", n.Op)
		}
	})
}

func TestHintsChangeCostNotResult(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	var counts []int64
	for _, h := range plan.BaoHintSets() {
		p, err := f.opt.WithHints(h).Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.ex.Run(q, p)
		if err != nil {
			t.Fatalf("hint %s: %v", h, err)
		}
		counts = append(counts, res.Count)
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("hint sets changed results: %v", counts)
		}
	}
}

func TestSingleTableOptimization(t *testing.T) {
	f := newFixture(t)
	q := &query.Query{
		Refs: []query.TableRef{{Alias: "users", Table: "users"}},
		Preds: []query.Pred{
			{Alias: "users", Column: "id", Op: query.Eq, Val: data.IntVal(5)},
		},
	}
	p, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// An equality on an indexed column should pick IndexScan.
	if p.Op != plan.IndexScan {
		t.Fatalf("expected IndexScan, got %v", p.Op)
	}
	// With IndexScan disabled it must fall back.
	p2, err := f.opt.WithHints(plan.HintSet{NoIndexScan: true}).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Op != plan.SeqScan {
		t.Fatalf("expected SeqScan, got %v", p2.Op)
	}
}

func TestPlanFromOrder(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	p, err := f.opt.PlanFromOrder(q, []string{"comments", "posts", "users"})
	if err != nil {
		t.Fatal(err)
	}
	order := p.JoinOrder()
	want := []string{"comments", "posts", "users"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	res, err := f.ex.Run(q, p)
	if err != nil {
		t.Fatal(err)
	}
	canonical, _ := exec.CanonicalPlan(q)
	wantRes, _ := f.ex.Run(q, canonical)
	if res.Count != wantRes.Count {
		t.Fatalf("ordered plan wrong: %d vs %d", res.Count, wantRes.Count)
	}
	if _, err := f.opt.PlanFromOrder(q, []string{"users"}); err == nil {
		t.Fatal("partial order should fail")
	}
}

func TestCandidatePlansDistinct(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	plans, err := f.opt.CandidatePlans(q, plan.BaoHintSets())
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no candidates")
	}
	seen := map[string]bool{}
	for _, p := range plans {
		fp := p.Fingerprint()
		if seen[fp] {
			t.Fatal("duplicate candidate plan")
		}
		seen[fp] = true
	}
	// Sorted by estimated cost.
	for i := 1; i < len(plans); i++ {
		if plans[i].EstCost < plans[i-1].EstCost {
			t.Fatal("candidates not sorted by cost")
		}
	}
}

func TestGreedyHandlesManyTables(t *testing.T) {
	f := newFixture(t)
	// Build a 6-table star query around users/posts.
	q := &query.Query{
		Refs: []query.TableRef{
			{Alias: "users", Table: "users"},
			{Alias: "posts", Table: "posts"},
			{Alias: "comments", Table: "comments"},
			{Alias: "votes", Table: "votes"},
			{Alias: "badges", Table: "badges"},
			{Alias: "postHistory", Table: "postHistory"},
		},
		Joins: []query.Join{
			{LeftAlias: "posts", LeftCol: "owner_user_id", RightAlias: "users", RightCol: "id"},
			{LeftAlias: "comments", LeftCol: "post_id", RightAlias: "posts", RightCol: "id"},
			{LeftAlias: "votes", LeftCol: "post_id", RightAlias: "posts", RightCol: "id"},
			{LeftAlias: "badges", LeftCol: "user_id", RightAlias: "users", RightCol: "id"},
			{LeftAlias: "postHistory", LeftCol: "post_id", RightAlias: "posts", RightCol: "id"},
		},
		Preds: []query.Pred{
			{Alias: "users", Column: "reputation", Op: query.Gt, Val: data.IntVal(2000)},
			{Alias: "posts", Column: "score", Op: query.Gt, Val: data.IntVal(20)},
			{Alias: "votes", Column: "vote_type", Op: query.Eq, Val: data.IntVal(1)},
		},
	}
	f.opt.MaxDPTables = 3 // force greedy
	p, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Aliases()) != 6 {
		t.Fatalf("greedy covers %v", p.Aliases())
	}
	res, err := f.ex.Run(q, p)
	if err != nil {
		t.Fatal(err)
	}
	canonical, _ := exec.CanonicalPlan(q)
	want, err := f.ex.Run(q, canonical)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want.Count {
		t.Fatalf("greedy result %d != %d", res.Count, want.Count)
	}
}

func TestOptimizerWithDisconnectedQuery(t *testing.T) {
	f := newFixture(t)
	q := &query.Query{
		Refs: []query.TableRef{
			{Alias: "badges", Table: "badges"},
			{Alias: "votes", Table: "votes"},
		},
		Preds: []query.Pred{
			{Alias: "badges", Column: "class", Op: query.Eq, Val: data.IntVal(1)},
			{Alias: "votes", Column: "vote_type", Op: query.Eq, Val: data.IntVal(3)},
		},
	}
	p, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != plan.NestedLoopJoin {
		t.Fatalf("cross product must be NL, got %v", p.Op)
	}
	if _, err := f.ex.Run(q, p); err != nil {
		t.Fatal(err)
	}
}

func TestRandomQueriesAllPlansAgree(t *testing.T) {
	// Property: for random small queries, DP plans under random hints
	// produce the same executed count as the canonical plan.
	f := newFixture(t)
	rng := rand.New(rand.NewSource(17))
	edges := query.DeriveSchemaEdges(f.cat)
	for trial := 0; trial < 10; trial++ {
		e := edges[rng.Intn(len(edges))]
		q := &query.Query{
			Refs: []query.TableRef{{Alias: e.T1, Table: e.T1}, {Alias: e.T2, Table: e.T2}},
			Joins: []query.Join{
				{LeftAlias: e.T1, LeftCol: e.C1, RightAlias: e.T2, RightCol: e.C2},
			},
		}
		hints := plan.BaoHintSets()
		h := hints[rng.Intn(len(hints))]
		p, err := f.opt.WithHints(h).Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		canonical, _ := exec.CanonicalPlan(q)
		want, err := f.ex.Run(q, canonical)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.ex.Run(q, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count {
			t.Fatalf("trial %d: %d != %d", trial, got.Count, want.Count)
		}
	}
}

func TestEmptyQueryErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := f.opt.Optimize(&query.Query{}); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestLeftDeepOnlyRestrictsShape(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	ld := *f.opt
	ld.LeftDeepOnly = true
	p, err := ld.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Every join's right child must be a scan.
	p.Walk(func(n *plan.Node) {
		if n.Op.IsJoin() && !n.Right.IsLeaf() {
			t.Fatalf("left-deep violated:\n%s", p)
		}
	})
	// Left-deep cost can never beat bushy-optimal.
	bushy, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCost < bushy.EstCost-1e-9 {
		t.Fatalf("left-deep %v cheaper than bushy %v", p.EstCost, bushy.EstCost)
	}
	// And it must still execute correctly.
	res, err := f.ex.Run(q, p)
	if err != nil {
		t.Fatal(err)
	}
	canonical, _ := exec.CanonicalPlan(q)
	want, _ := f.ex.Run(q, canonical)
	if res.Count != want.Count {
		t.Fatalf("left-deep result %d != %d", res.Count, want.Count)
	}
}
