// Selinger dynamic programming: exhaustive bushy (or left-deep) join
// enumeration over connected alias subsets, memoized by bitmask.
package opt

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"lqo/internal/plan"
	"lqo/internal/query"
)

// memoEntry is the best plan found for one alias subset.
type memoEntry struct {
	node *plan.Node
	cost float64
	card float64
}

type dpState struct {
	q       *query.Query
	g       *query.JoinGraph
	aliases []string
	memo    []*memoEntry // indexed by bitmask
	cards   []float64    // estimated cardinality per bitmask (-1 unset)
	plans   int64        // plan alternatives costed by this call
}

func (o *Optimizer) optimizeDP(ctx context.Context, q *query.Query) (*plan.Node, error) {
	n := len(q.Refs)
	st := &dpState{
		q:       q,
		g:       query.NewJoinGraph(q),
		aliases: q.Aliases(),
		memo:    make([]*memoEntry, 1<<n),
		cards:   make([]float64, 1<<n),
	}
	for i := range st.cards {
		st.cards[i] = -1
	}
	defer func() { atomic.StoreInt64(&o.plansConsidered, st.plans) }()

	// Base: best scan per alias.
	for i, a := range st.aliases {
		e, err := o.bestScan(st, i, a)
		if err != nil {
			return nil, err
		}
		st.memo[1<<i] = e
	}

	full := (1 << n) - 1
	for mask := 1; mask <= full; mask++ {
		if mask%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if st.memo[mask] != nil || bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		best := o.bestJoinForMask(st, mask)
		st.memo[mask] = best
	}
	e := st.memo[full]
	if e == nil || e.node == nil {
		return nil, fmt.Errorf("opt: no plan found for %s", q.SQL())
	}
	return e.node, nil
}

// bestJoinForMask enumerates ordered partitions (left, right) of mask and
// keeps the cheapest feasible join.
func (o *Optimizer) bestJoinForMask(st *dpState, mask int) *memoEntry {
	bestCost := math.Inf(1)
	var bestNode *plan.Node
	card := o.maskCard(st, mask)
	// Iterate all proper non-empty submasks.
	for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
		other := mask ^ sub
		if o.LeftDeepOnly && bits.OnesCount(uint(other)) != 1 {
			continue // right operand must be a base relation
		}
		le, re := st.memo[sub], st.memo[other]
		if le == nil || re == nil || le.node == nil || re.node == nil {
			continue
		}
		conds := st.g.JoinsBetween(o.maskSet(st, sub), o.maskSet(st, other))
		var ops []plan.Op
		if len(conds) == 0 {
			// Cross product: nested loop only, and only if unavoidable
			// (the subset pair is disconnected in the join graph).
			ops = []plan.Op{plan.NestedLoopJoin}
		} else {
			for _, op := range []plan.Op{plan.HashJoin, plan.MergeJoin, plan.NestedLoopJoin} {
				if o.Hints.AllowsJoin(op) {
					ops = append(ops, op)
				}
			}
			if len(ops) == 0 {
				ops = []plan.Op{plan.HashJoin} // hints must not make queries unplannable
			}
		}
		for _, op := range ops {
			if len(conds) == 0 && op != plan.NestedLoopJoin {
				continue
			}
			st.plans++
			jc := o.Cost.JoinCost(op, le.card, re.card, card)
			total := le.cost + re.cost + jc
			if total < bestCost {
				node := plan.NewJoin(op, le.node, re.node, conds)
				node.EstCard = card
				node.EstCost = total
				bestCost = total
				bestNode = node
			}
		}
	}
	if bestNode == nil {
		return &memoEntry{}
	}
	return &memoEntry{node: bestNode, cost: bestCost, card: card}
}

func (o *Optimizer) maskSet(st *dpState, mask int) map[string]bool {
	s := make(map[string]bool)
	for i, a := range st.aliases {
		if mask&(1<<i) != 0 {
			s[a] = true
		}
	}
	return s
}

func (o *Optimizer) maskCard(st *dpState, mask int) float64 {
	if st.cards[mask] >= 0 {
		return st.cards[mask]
	}
	c := o.estimate(st.q.Subquery(o.maskSet(st, mask)))
	st.cards[mask] = c
	return c
}

// bestScan returns the cheapest allowed scan for the alias at index i.
func (o *Optimizer) bestScan(st *dpState, i int, alias string) (*memoEntry, error) {
	preds := st.q.PredsOn(alias)
	table := st.q.TableOf(alias)
	card := o.maskCard(st, 1<<i)

	bestCost := math.Inf(1)
	var bestNode *plan.Node
	consider := func(op plan.Op, inRows float64, npreds int) {
		st.plans++
		c := o.Cost.ScanCost(op, inRows, card, npreds)
		if c < bestCost {
			node := plan.NewScan(op, alias, table, preds)
			node.EstCard = card
			node.EstCost = c
			bestCost = c
			bestNode = node
		}
	}
	hasIndexEq := o.indexEqColumn(table, preds) != ""
	if o.Hints.AllowsScan(plan.SeqScan) || !hasIndexEq {
		consider(plan.SeqScan, o.Cost.TableRows(table), len(preds))
	}
	if hasIndexEq && o.Hints.AllowsScan(plan.IndexScan) {
		col := o.indexEqColumn(table, preds)
		consider(plan.IndexScan, o.Cost.IndexFetchRows(table, col), len(preds)-1)
	}
	if bestNode == nil {
		return nil, fmt.Errorf("opt: no scan allowed for %s", alias)
	}
	return &memoEntry{node: bestNode, cost: bestCost, card: card}, nil
}
