package opt

import (
	"testing"

	"lqo/internal/datagen"
	"lqo/internal/exec"
	"lqo/internal/query"
)

// TestCardsFromPlan checks the execution-feedback loop: after running a
// plan, every sub-plan's harvested cardinality must equal the true
// cardinality of its sub-query, so the map can be pushed back into an
// injected estimator without distorting anything.
func TestCardsFromPlan(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	p, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.ex.Run(q, p)
	if err != nil {
		t.Fatal(err)
	}
	cards := CardsFromPlan(q, p)
	nodes := p.Nodes()
	if len(cards) != len(nodes) {
		t.Fatalf("harvested %d cards from %d plan nodes", len(cards), len(nodes))
	}
	if got := cards[q.Key()]; got != float64(res.Count) {
		t.Fatalf("root card = %v, result count = %d", got, res.Count)
	}
	for _, n := range nodes {
		sub := n.Subquery(q)
		got, ok := cards[sub.Key()]
		if !ok {
			t.Fatalf("no card for sub-plan %v", n.Aliases())
		}
		want, err := f.cache.TrueCard(sub)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("sub-plan %v: harvested %v, true %v", n.Aliases(), got, want)
		}
	}
}

// TestCardsFromPlanCloseLoop replans with the harvested cardinalities
// injected and checks the optimizer accepts them: the replanned query
// must still cover all aliases and cost no more than the first plan
// under the oracle estimator.
func TestCardsFromPlanCloseLoop(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	p, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ex.Run(q, p); err != nil {
		t.Fatal(err)
	}
	cards := CardsFromPlan(q, p)
	fed := f.opt.WithEstimator(mapEstimator(cards))
	p2, err := fed.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Aliases()) != len(q.Refs) {
		t.Fatalf("replanned plan covers %v", p2.Aliases())
	}
	// The fed optimizer saw exact cardinalities for every sub-plan the
	// executed tree contained; its plan must execute to the same count.
	res2, err := f.ex.Run(q, p2)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := f.ex.Run(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Count != res2.Count {
		t.Fatalf("counts diverged: %d vs %d", res1.Count, res2.Count)
	}
}

// mapEstimator serves harvested cardinalities and answers 1 elsewhere.
type mapEstimator map[string]float64

func (m mapEstimator) Estimate(q *query.Query) float64 {
	if c, ok := m[q.Key()]; ok {
		return c
	}
	return 1
}

// TestCardsFromPlanAfterDrift pins the stale-plan harvest contract the
// serving layer and the adaptation loop both rely on: a plan optimized
// BEFORE catalog drift, re-executed after the data moved under it, must
// harvest the POST-drift truth for every sub-plan — the harvest reflects
// what execution actually saw, never the estimates or the pre-drift world,
// so feedback from stale plans self-corrects instead of poisoning replans.
func TestCardsFromPlanAfterDrift(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	p, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ex.Run(q, p); err != nil {
		t.Fatal(err)
	}
	before := CardsFromPlan(q, p)

	datagen.ApplyDrift(f.cat, datagen.DriftOptions{Seed: 41, Fraction: 0.8, ValueSkew: 2, DomainShift: 0.4})

	// Same (now stale) plan tree, re-executed against the drifted catalog.
	res, err := f.ex.Run(q, p)
	if err != nil {
		t.Fatal(err)
	}
	after := CardsFromPlan(q, p)
	if len(after) != len(before) {
		t.Fatalf("harvest shape changed across drift: %d vs %d keys", len(after), len(before))
	}
	if got := after[q.Key()]; got != float64(res.Count) {
		t.Fatalf("root card = %v, drifted result count = %d", got, res.Count)
	}
	// Every harvested value equals the drifted truth, verified against a
	// fresh truth cache over the drifted catalog.
	fresh := exec.NewCardCache(f.ex)
	changed := false
	for _, n := range p.Nodes() {
		sub := n.Subquery(q)
		want, err := fresh.TrueCard(sub)
		if err != nil {
			t.Fatal(err)
		}
		if after[sub.Key()] != want {
			t.Errorf("sub-plan %v: harvested %v, drifted truth %v", n.Aliases(), after[sub.Key()], want)
		}
		if after[sub.Key()] != before[sub.Key()] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("drift changed no sub-plan cardinality; scenario vacuous")
	}
}
