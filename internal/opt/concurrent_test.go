package opt

import (
	"sync"
	"testing"
)

// TestOptimizerConcurrentUse is the regression test for the
// PlansConsidered data race: one optimizer planning queries from many
// goroutines used to mutate the exported counter field concurrently.
// Run under -race this fails against the pre-fix code.
func TestOptimizerConcurrentUse(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()

	// Establish the serial reference plan and enumeration count.
	ref, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	wantPlans := f.opt.PlansConsidered()
	if wantPlans == 0 {
		t.Fatal("serial call considered no plans")
	}

	const goroutines = 8
	fps := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				p, err := f.opt.Optimize(q)
				if err != nil {
					errs[g] = err
					return
				}
				fps[g] = p.Fingerprint()
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	// Planning is deterministic: every goroutine finds the serial plan.
	for g, fp := range fps {
		if fp != ref.Fingerprint() {
			t.Errorf("goroutine %d found plan %s, serial %s", g, fp, ref.Fingerprint())
		}
	}
	// The published count is one coherent per-call total, not a torn
	// interleaving of several calls' increments.
	if got := f.opt.PlansConsidered(); got != wantPlans {
		t.Errorf("PlansConsidered after concurrent calls = %d, serial call = %d", got, wantPlans)
	}
}
