package opt

import (
	"context"
	"errors"
	"math"
	"testing"

	"lqo/internal/query"
)

func TestOptimizeCtxPreCanceled(t *testing.T) {
	f := newFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.opt.OptimizeCtx(ctx, chainQuery()); !errors.Is(err, context.Canceled) {
		t.Fatalf("OptimizeCtx err = %v, want context.Canceled", err)
	}
}

func TestOptimizeCtxBackgroundMatchesOptimize(t *testing.T) {
	f := newFixture(t)
	q := chainQuery()
	a, err := f.opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.opt.OptimizeCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("plans diverge: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
}

// brokenEstimator returns non-finite garbage — the clamp must keep cost
// arithmetic finite and planning functional.
type brokenEstimator struct{ mode int }

func (b *brokenEstimator) Estimate(q *query.Query) float64 {
	switch b.mode {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return -42
	default:
		return math.Inf(-1)
	}
}

func TestOptimizeSurvivesBrokenEstimator(t *testing.T) {
	f := newFixture(t)
	for mode := 0; mode < 4; mode++ {
		o := f.opt.WithEstimator(&brokenEstimator{mode: mode})
		p, err := o.Optimize(chainQuery())
		if err != nil {
			t.Fatalf("mode %d: Optimize failed: %v", mode, err)
		}
		var walk func(n interface{ IsLeaf() bool })
		_ = walk
		if math.IsNaN(p.EstCost) || math.IsInf(p.EstCost, 0) {
			t.Fatalf("mode %d: non-finite plan cost %v escaped the clamp", mode, p.EstCost)
		}
	}
}
