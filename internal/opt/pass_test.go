package opt

import (
	"context"
	"testing"

	"lqo/internal/plan"
	"lqo/internal/workload"
)

// TestPipelineIdentityOnEnumerationOutput is the refactor's anchor: with
// sharding off, the default rewrite pipeline must be a semantic no-op on
// enumeration output — OptimizeCtx (enumerate + passes) returns a plan
// fingerprint-identical to the raw enumerator's across a generated
// workload. Enumeration already pushes predicates down and annotates
// with the same estimator, so every default pass reaches fixpoint
// without firing.
func TestPipelineIdentityOnEnumerationOutput(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	qs := workload.GenWorkload(f.cat, workload.Options{Seed: 11, Count: 30, MaxJoins: 4, MaxPreds: 3})
	for i, q := range qs {
		raw, err := f.opt.enumerate(ctx, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		full, trace, err := f.opt.OptimizeTraceCtx(ctx, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if full.Fingerprint() != raw.Fingerprint() {
			t.Fatalf("query %d: pipeline changed the plan\nraw:  %s\nfull: %s", i, raw.String(), full.String())
		}
		for _, tr := range trace {
			if tr.Fired {
				t.Fatalf("query %d: pass fired on enumeration output: %v", i, tr)
			}
		}
	}
}

// TestOptimizeTraceCoversDefaultPasses pins the acceptance criterion:
// the default pipeline runs at least four distinct passes and the trace
// records every one of them.
func TestOptimizeTraceCoversDefaultPasses(t *testing.T) {
	f := newFixture(t)
	_, trace, err := f.opt.OptimizeTraceCtx(context.Background(), chainQuery())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tr := range trace {
		seen[tr.Pass] = true
	}
	for _, name := range []string{"pushdown", "constfold", "joinkey-dedup", "reannotate"} {
		if !seen[name] {
			t.Fatalf("trace missing pass %q: %v", name, trace)
		}
	}
	if len(seen) < 4 {
		t.Fatalf("default pipeline ran %d distinct passes, want >= 4", len(seen))
	}
}

// TestOptimizerShardsProducesMergePlans checks the optimizer-level
// sharding switch: Shards >= 2 appends the shard-scans pass, and the
// resulting plan fans every SeqScan leaf out into a Merge node whose
// logical projection still matches the unsharded plan.
func TestOptimizerShardsProducesMergePlans(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()
	q := chainQuery()
	unsharded, err := f.opt.OptimizeCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	so := f.opt.WithEstimator(f.opt.Est) // shallow copy, same estimator
	so.Shards = 3
	sharded, trace, err := so.OptimizeTraceCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	firedShard := false
	for _, tr := range trace {
		if tr.Pass == "shard-scans" && tr.Fired {
			firedShard = true
		}
	}
	merges := 0
	sharded.Walk(func(n *plan.Node) {
		if n.Op == plan.Merge {
			merges++
			if len(n.Shards) != 3 {
				t.Fatalf("Merge has %d shards, want 3", len(n.Shards))
			}
		}
	})
	seqScans := 0
	unsharded.Walk(func(n *plan.Node) {
		if n.Op == plan.SeqScan && n.IsLeaf() {
			seqScans++
		}
	})
	if seqScans > 0 && (!firedShard || merges != seqScans) {
		t.Fatalf("shards=3: %d Merge nodes for %d SeqScan leaves (pass fired: %v)", merges, seqScans, firedShard)
	}
	// The logical tree (Merge standing in for its scan) keeps the join
	// order: sharding must never change what the optimizer chose.
	if got, want := join(sharded.JoinOrder()), join(unsharded.JoinOrder()); got != want {
		t.Fatalf("sharding changed the join order: %s vs %s", got, want)
	}
	// Disabling rewrites entirely must also be possible: an explicit empty
	// pipeline returns raw enumeration even with Shards set.
	so.Passes = &plan.PassPipeline{}
	rawOnly, err := so.OptimizeCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rawOnly.Walk(func(n *plan.Node) {
		if n.Op == plan.Merge {
			t.Fatal("explicit empty pipeline still sharded the plan")
		}
	})
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
