package opt

import (
	"lqo/internal/plan"
	"lqo/internal/query"
)

// CardsFromPlan harvests execution feedback from an executed,
// TrueCard-annotated plan: one exact cardinality per sub-plan, keyed by
// the sub-query's canonical key. The result plugs straight into an
// injected estimator (PilotScope's PushCards), so the next optimization
// of the same query — or any query sharing sub-plans — plans with true
// cardinalities where they are known.
//
// The plan must come from a successful execution (every node annotated);
// a successful run annotates the whole tree, so a zero TrueCard means a
// genuinely empty intermediate, which is itself valuable feedback.
func CardsFromPlan(q *query.Query, p *plan.Node) map[string]float64 {
	cards := make(map[string]float64)
	// Logical walk: a Merge node stands in for the scan it sharded, and
	// its shard internals carry per-partition counts that must never
	// masquerade as the whole scan's truth under the same sub-query key.
	p.WalkLogical(func(n *plan.Node) {
		cards[n.Subquery(q).Key()] = n.TrueCard
	})
	return cards
}
