package query

import (
	"strings"
	"testing"

	"lqo/internal/data"
)

// The adversarial pairs below collide under the pre-canonical key
// formats (bare ","/"|"/";" delimiters around raw component strings) and
// must be distinct under the length-prefixed KeyBuilder encoding. They
// are the regression suite for the delimiter-injection bug family.

func TestKeyRefDelimiterInjection(t *testing.T) {
	// Old format rendered refs as alias+":"+table joined by ",":
	// {a, "t,x:u"} → "a:t,x:u" — identical to {a,t},{x,u}.
	q1 := &Query{Refs: []TableRef{{Alias: "a", Table: "t,x:u"}}}
	q2 := &Query{Refs: []TableRef{{Alias: "a", Table: "t"}, {Alias: "x", Table: "u"}}}
	if q1.Key() == q2.Key() {
		t.Fatalf("ref delimiter injection collides: %q", q1.Key())
	}
}

func TestKeyPredDelimiterInjection(t *testing.T) {
	// Old format joined Pred.String() values with ",": a column name
	// containing " = 1,a.y" spliced one predicate into two.
	base := []TableRef{{Alias: "a", Table: "t"}}
	q1 := &Query{Refs: base, Preds: []Pred{
		{Alias: "a", Column: "x = 1,a.y", Op: Eq, Val: data.IntVal(2)},
	}}
	q2 := &Query{Refs: base, Preds: []Pred{
		{Alias: "a", Column: "x", Op: Eq, Val: data.IntVal(1)},
		{Alias: "a", Column: "y", Op: Eq, Val: data.IntVal(2)},
	}}
	if q1.Key() == q2.Key() {
		t.Fatalf("pred delimiter injection collides: %q", q1.Key())
	}
}

func TestKeyJoinDelimiterInjection(t *testing.T) {
	// Old format rendered joins as "a.c=b.d" with raw "." and "=": an
	// alias containing either spliced one edge into another.
	base := []TableRef{{Alias: "a", Table: "t"}, {Alias: "b", Table: "u"}}
	q1 := &Query{Refs: base, Joins: []Join{
		{LeftAlias: "a", LeftCol: "x=b.y", RightAlias: "b", RightCol: "z"},
	}}
	q2 := &Query{Refs: base, Joins: []Join{
		{LeftAlias: "a", LeftCol: "x", RightAlias: "b", RightCol: "y=b.z"},
	}}
	if q1.Key() == q2.Key() {
		t.Fatalf("join delimiter injection collides: %q", q1.Key())
	}
}

func TestKeySectionInjection(t *testing.T) {
	// Old format separated refs/joins/preds sections with bare "|": a
	// table name containing "|" shifted content across sections.
	q1 := &Query{Refs: []TableRef{{Alias: "a", Table: "t|"}}}
	q2 := &Query{Refs: []TableRef{{Alias: "a", Table: "t"}}}
	if q1.Key() == q2.Key() {
		t.Fatalf("section delimiter injection collides: %q", q1.Key())
	}
}

func TestKeyNumericCanonicalization(t *testing.T) {
	base := []TableRef{{Alias: "a", Table: "t"}}
	mk := func(v data.Value) *Query {
		return &Query{Refs: base, Preds: []Pred{{Alias: "a", Column: "x", Op: Gt, Val: v}}}
	}
	// The same number reached as an int literal and a float literal must
	// share a key: FormatFloat 'g' renders 1e6 as "1e+06" while the int
	// path renders "1000000", so the old keys drifted apart.
	if mk(data.IntVal(1000000)).Key() != mk(data.FloatVal(1e6)).Key() {
		t.Fatalf("1000000 vs 1e+06 drift: %q vs %q",
			mk(data.IntVal(1000000)).Key(), mk(data.FloatVal(1e6)).Key())
	}
	if strings.Contains(mk(data.FloatVal(1e6)).Key(), "e+") {
		t.Fatalf("canonical key still uses exponent form: %q", mk(data.FloatVal(1e6)).Key())
	}
	// Distinct numbers stay distinct.
	if mk(data.FloatVal(1.5)).Key() == mk(data.FloatVal(2.5)).Key() {
		t.Fatal("distinct float literals collide")
	}
	// Beyond 2^53 the int and float paths have genuinely different match
	// semantics (MatchesInt is exact; floats conflate adjacent keys), so
	// those keys must NOT merge.
	big := int64(1) << 60
	if mk(data.IntVal(big)).Key() == mk(data.FloatVal(float64(big))).Key() {
		t.Fatal("exact int64 beyond 2^53 merged with its lossy float rendering")
	}
}

func TestCanonNum(t *testing.T) {
	cases := []struct {
		v    data.Value
		want string
	}{
		{data.IntVal(42), "42"},
		{data.IntVal(-7), "-7"},
		{data.FloatVal(42), "42"},
		{data.FloatVal(-7), "-7"},
		{data.FloatVal(1e6), "1000000"},
		{data.FloatVal(0.5), "0.5"},
		{data.FloatVal(-0.0), "0"},
		{data.Value{K: data.String, I: 9}, "9"}, // dictionary code
	}
	for _, c := range cases {
		if got := CanonNum(c.v); got != c.want {
			t.Errorf("CanonNum(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKeyBuilderAtomPrefixFree(t *testing.T) {
	// The classic length-prefix property: ("ab","c") vs ("a","bc") must
	// encode differently even though the concatenated content is equal.
	var k1, k2 KeyBuilder
	k1.Atom("ab").Atom("c")
	k2.Atom("a").Atom("bc")
	if k1.String() == k2.String() {
		t.Fatalf("atom encoding is not prefix-free: %q", k1.String())
	}
}

func TestKeyOrderInvarianceSurvivesEncoding(t *testing.T) {
	// The canonical encoding must preserve Key's clause-order invariance.
	q1 := &Query{
		Refs:  []TableRef{{Alias: "a", Table: "t"}, {Alias: "b", Table: "u"}},
		Joins: []Join{{LeftAlias: "a", LeftCol: "x", RightAlias: "b", RightCol: "y"}},
		Preds: []Pred{
			{Alias: "a", Column: "x", Op: Gt, Val: data.IntVal(1)},
			{Alias: "b", Column: "y", Op: Lt, Val: data.IntVal(9)},
		},
	}
	q2 := q1.Clone()
	q2.Refs[0], q2.Refs[1] = q2.Refs[1], q2.Refs[0]
	q2.Joins[0] = Join{LeftAlias: "b", LeftCol: "y", RightAlias: "a", RightCol: "x"}
	q2.Preds[0], q2.Preds[1] = q2.Preds[1], q2.Preds[0]
	if q1.Key() != q2.Key() {
		t.Fatalf("Key lost order invariance:\n%s\n%s", q1.Key(), q2.Key())
	}
}

func TestKeyParamShape(t *testing.T) {
	base := []TableRef{{Alias: "a", Table: "t"}}
	tmpl := &Query{Refs: base, Preds: []Pred{{Alias: "a", Column: "x", Op: Gt, Param: 1}}}
	bound := &Query{Refs: base, Preds: []Pred{{Alias: "a", Column: "x", Op: Gt, Val: data.IntVal(5)}}}
	if tmpl.Key() == bound.Key() {
		t.Fatal("template shape key collides with a bound query key")
	}
	// A literal "?1"-ish value cannot impersonate a placeholder: the
	// placeholder marker sits outside any atom.
	if tmpl.NumParams() != 1 {
		t.Fatalf("NumParams = %d", tmpl.NumParams())
	}
}

func TestValidateRejectsUnboundParams(t *testing.T) {
	cat := twoTableCatalog()
	q := &Query{
		Refs:  []TableRef{{Alias: "t1", Table: "t1"}},
		Preds: []Pred{{Alias: "t1", Column: "id", Op: Eq, Param: 1}},
	}
	if err := q.Validate(cat); err == nil {
		t.Fatal("Validate accepted an unbound parameter")
	}
	if err := q.ValidateShape(cat); err != nil {
		t.Fatalf("ValidateShape rejected a valid template: %v", err)
	}
}
