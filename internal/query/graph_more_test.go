package query

import (
	"testing"
	"testing/quick"

	"lqo/internal/data"
)

func starQuery(n int) *Query {
	q := &Query{Refs: []TableRef{{Alias: "hub", Table: "hub"}}}
	for i := 0; i < n; i++ {
		a := string(rune('a' + i))
		q.Refs = append(q.Refs, TableRef{Alias: a, Table: a})
		q.Joins = append(q.Joins, Join{LeftAlias: "hub", LeftCol: "id", RightAlias: a, RightCol: "hub_id"})
	}
	return q
}

func TestConnectedSubsetsMaxSize(t *testing.T) {
	q := starQuery(4) // 5 vertices
	g := NewJoinGraph(q)
	subs := g.ConnectedSubsets(2)
	for _, s := range subs {
		if len(s) > 2 {
			t.Fatalf("subset %v exceeds maxSize", s)
		}
	}
	// Star: 5 singletons + 4 hub-pairs = 9 subsets of size ≤ 2.
	if len(subs) != 9 {
		t.Fatalf("got %d subsets: %v", len(subs), subs)
	}
}

func TestConnectedSubsetsStarFull(t *testing.T) {
	q := starQuery(3) // hub + a,b,c
	g := NewJoinGraph(q)
	subs := g.ConnectedSubsets(0)
	// Every connected subset of a star must contain the hub unless it is a
	// singleton satellite.
	for _, s := range subs {
		if len(s) == 1 {
			continue
		}
		hasHub := false
		for _, a := range s {
			if a == "hub" {
				hasHub = true
			}
		}
		if !hasHub {
			t.Fatalf("connected multi-set without hub: %v", s)
		}
	}
	// Count: 4 singletons + C(3,1)+C(3,2)+C(3,3) hub-sets = 4 + 7 = 11.
	if len(subs) != 11 {
		t.Fatalf("got %d subsets", len(subs))
	}
}

func TestSubqueryPropertyContained(t *testing.T) {
	q := starQuery(4)
	q.Preds = []Pred{
		{Alias: "hub", Column: "id", Op: Gt, Val: data.IntVal(1)},
		{Alias: "a", Column: "hub_id", Op: Eq, Val: data.IntVal(2)},
	}
	err := quick.Check(func(mask uint8) bool {
		set := map[string]bool{}
		aliases := q.Aliases()
		for i, a := range aliases {
			if mask&(1<<uint(i%8)) != 0 {
				set[a] = true
			}
		}
		sub := q.Subquery(set)
		// Every ref/join/pred of the sub-query references only set members.
		for _, r := range sub.Refs {
			if !set[r.Alias] {
				return false
			}
		}
		for _, j := range sub.Joins {
			if !set[j.LeftAlias] || !set[j.RightAlias] {
				return false
			}
		}
		for _, p := range sub.Preds {
			if !set[p.Alias] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKeyDistinguishesDifferentQueries(t *testing.T) {
	q1 := starQuery(2)
	q2 := starQuery(2)
	q2.Preds = []Pred{{Alias: "a", Column: "hub_id", Op: Eq, Val: data.IntVal(7)}}
	if q1.Key() == q2.Key() {
		t.Fatal("different queries share a Key")
	}
	q3 := starQuery(3)
	if q1.Key() == q3.Key() {
		t.Fatal("different table sets share a Key")
	}
}
