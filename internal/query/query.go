// Package query defines the logical representation of SPJ (select-project-
// join) queries: table references, predicates, equi-join edges, and the
// join graph with connected-subgraph enumeration used by optimizers and
// by sub-query cardinality estimation.
package query

import (
	"fmt"
	"sort"
	"strings"

	"lqo/internal/data"
)

// CmpOp is a comparison operator in a predicate.
type CmpOp int

// Supported comparison operators. Between is a closed range [Val, Val2].
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
	Between
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Between:
		return "BETWEEN"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Pred is a single-column filter predicate "alias.column op value".
//
// Param/Param2, when non-zero, mark the value (respectively the Between
// upper bound) as an unbound 1-based prepared-statement placeholder: the
// predicate belongs to a statement template, Val/Val2 are meaningless,
// and the query must be bound (sqlx.Prepared.Bind) before it can be
// validated, estimated or executed.
type Pred struct {
	Alias  string
	Column string
	Op     CmpOp
	Val    data.Value
	Val2   data.Value // upper bound for Between
	Param  int        // 1-based placeholder ordinal for Val; 0 = literal
	Param2 int        // 1-based placeholder ordinal for Val2; 0 = literal
}

// String renders the predicate in SQL. Unbound placeholders render as
// "?", matching the prepared-statement source text.
func (p Pred) String() string {
	lo, hi := p.Val.String(), p.Val2.String()
	if p.Param != 0 {
		lo = "?"
	}
	if p.Param2 != 0 {
		hi = "?"
	}
	if p.Op == Between {
		return fmt.Sprintf("%s.%s BETWEEN %s AND %s", p.Alias, p.Column, lo, hi)
	}
	return fmt.Sprintf("%s.%s %s %s", p.Alias, p.Column, p.Op, lo)
}

// Matches reports whether the numeric value v satisfies the predicate.
func (p Pred) Matches(v float64) bool {
	switch p.Op {
	case Eq:
		return v == p.Val.AsFloat()
	case Ne:
		return v != p.Val.AsFloat()
	case Lt:
		return v < p.Val.AsFloat()
	case Le:
		return v <= p.Val.AsFloat()
	case Gt:
		return v > p.Val.AsFloat()
	case Ge:
		return v >= p.Val.AsFloat()
	case Between:
		return v >= p.Val.AsFloat() && v <= p.Val2.AsFloat()
	default:
		return false
	}
}

// MatchesInt reports whether the int64 value v (an Int column value or a
// String column's dictionary code) satisfies the predicate. When the
// predicate's value is itself integral the comparison happens exactly in
// int64 — float64 cannot represent every int64 above 2^53, so the float
// path of Matches would conflate adjacent large keys. Mixed-kind
// comparisons (a float literal against an int column) keep the float
// semantics of Matches.
func (p Pred) MatchesInt(v int64) bool {
	if p.Val.K == data.Float || (p.Op == Between && p.Val2.K == data.Float) {
		return p.Matches(float64(v))
	}
	switch p.Op {
	case Eq:
		return v == p.Val.I
	case Ne:
		return v != p.Val.I
	case Lt:
		return v < p.Val.I
	case Le:
		return v <= p.Val.I
	case Gt:
		return v > p.Val.I
	case Ge:
		return v >= p.Val.I
	case Between:
		return v >= p.Val.I && v <= p.Val2.I
	default:
		return false
	}
}

// Bounds returns the selected numeric range [lo, hi] implied by the
// predicate, using ±inf sentinels supplied by the caller for open sides.
// Ne predicates select the full range (their selectivity is handled
// separately by estimators).
func (p Pred) Bounds(min, max float64) (lo, hi float64) {
	v := p.Val.AsFloat()
	switch p.Op {
	case Eq:
		return v, v
	case Lt, Le:
		return min, v
	case Gt, Ge:
		return v, max
	case Between:
		return v, p.Val2.AsFloat()
	default:
		return min, max
	}
}

// Join is an equi-join edge "left.lcol = right.rcol" between two aliases.
type Join struct {
	LeftAlias  string
	LeftCol    string
	RightAlias string
	RightCol   string
}

// String renders the join condition in SQL.
func (j Join) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol)
}

// Touches reports whether the edge references the alias.
func (j Join) Touches(alias string) bool {
	return j.LeftAlias == alias || j.RightAlias == alias
}

// Other returns the alias on the opposite side of the edge, or "" if the
// edge does not touch alias.
func (j Join) Other(alias string) string {
	switch alias {
	case j.LeftAlias:
		return j.RightAlias
	case j.RightAlias:
		return j.LeftAlias
	default:
		return ""
	}
}

// TableRef binds an alias to a base table name. Alias equals Table when no
// explicit alias is given.
type TableRef struct {
	Alias string
	Table string
}

// Query is a logical SPJ query: FROM refs, WHERE equi-joins and filters.
// The result of interest throughout the workbench is COUNT(*) — the
// cardinality — matching the cardinality-estimation literature.
type Query struct {
	Refs  []TableRef
	Joins []Join
	Preds []Pred
	// Agg is the aggregate computed over the join result; the zero value
	// is COUNT(*), the cardinality the whole workbench revolves around.
	Agg Agg
}

// Clone returns a deep copy.
func (q *Query) Clone() *Query {
	c := &Query{
		Refs:  append([]TableRef(nil), q.Refs...),
		Joins: append([]Join(nil), q.Joins...),
		Preds: append([]Pred(nil), q.Preds...),
		Agg:   q.Agg,
	}
	return c
}

// Aliases returns the query's aliases in FROM order.
func (q *Query) Aliases() []string {
	out := make([]string, len(q.Refs))
	for i, r := range q.Refs {
		out[i] = r.Alias
	}
	return out
}

// TableOf returns the base table bound to the alias, or "".
func (q *Query) TableOf(alias string) string {
	for _, r := range q.Refs {
		if r.Alias == alias {
			return r.Table
		}
	}
	return ""
}

// PredsOn returns the filter predicates referencing the alias.
func (q *Query) PredsOn(alias string) []Pred {
	var out []Pred
	for _, p := range q.Preds {
		if p.Alias == alias {
			out = append(out, p)
		}
	}
	return out
}

// SQL renders the query as a SELECT <agg> statement.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(q.Agg.String())
	b.WriteString(" FROM ")
	for i, r := range q.Refs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.Table)
		if r.Alias != r.Table {
			b.WriteString(" ")
			b.WriteString(r.Alias)
		}
	}
	var conds []string
	for _, j := range q.Joins {
		conds = append(conds, j.String())
	}
	for _, p := range q.Preds {
		conds = append(conds, p.String())
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	b.WriteString(";")
	return b.String()
}

// Key returns a canonical string identifying the query's FROM/WHERE
// content — the part that determines cardinality: sorted refs, joins and
// predicates. Two structurally identical queries share a Key regardless
// of clause order or aggregate target (SUM and COUNT over the same join
// have the same cardinality). The encoding is collision-safe: every
// component is length-prefixed through KeyBuilder, so delimiter bytes
// inside aliases, tables, columns or literals cannot make two distinct
// queries collide (they used to, with bare ","/"|" joins). Unbound
// placeholder predicates render as "?N" ordinals, so a prepared
// statement template's Key is its binding-structure shape key.
func (q *Query) Key() string {
	refs := make([]string, len(q.Refs))
	for i, r := range q.Refs {
		var kb KeyBuilder
		kb.Raw("r(").Atom(r.Alias).Raw(":").Atom(r.Table).Raw(")")
		refs[i] = kb.String()
	}
	sort.Strings(refs)
	joins := make([]string, len(q.Joins))
	for i, j := range q.Joins {
		n := j
		if n.LeftAlias > n.RightAlias || (n.LeftAlias == n.RightAlias && n.LeftCol > n.RightCol) {
			n.LeftAlias, n.LeftCol, n.RightAlias, n.RightCol = n.RightAlias, n.RightCol, n.LeftAlias, n.LeftCol
		}
		joins[i] = n.KeyString()
	}
	sort.Strings(joins)
	preds := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		preds[i] = p.KeyString()
	}
	sort.Strings(preds)
	var k KeyBuilder
	for _, s := range refs {
		k.Append(s)
	}
	k.Raw("|")
	for _, s := range joins {
		k.Append(s)
	}
	k.Raw("|")
	for _, s := range preds {
		k.Append(s)
	}
	return k.String()
}

// NumParams returns the number of unbound placeholder slots in the
// query's predicates (the highest Param ordinal; 0 for a fully bound
// query).
func (q *Query) NumParams() int {
	n := 0
	for _, p := range q.Preds {
		if p.Param > n {
			n = p.Param
		}
		if p.Param2 > n {
			n = p.Param2
		}
	}
	return n
}

// Subquery projects the query onto a subset of aliases: only refs in the
// subset, joins fully contained in it, and predicates on it are kept.
func (q *Query) Subquery(aliases map[string]bool) *Query {
	sub := &Query{}
	for _, r := range q.Refs {
		if aliases[r.Alias] {
			sub.Refs = append(sub.Refs, r)
		}
	}
	for _, j := range q.Joins {
		if aliases[j.LeftAlias] && aliases[j.RightAlias] {
			sub.Joins = append(sub.Joins, j)
		}
	}
	for _, p := range q.Preds {
		if aliases[p.Alias] {
			sub.Preds = append(sub.Preds, p)
		}
	}
	return sub
}

// Validate checks that every join and predicate references a declared
// alias, and that referenced columns exist in cat. Queries with unbound
// placeholder predicates fail: they are statement templates and must be
// bound first (ValidateShape is the template-side check).
func (q *Query) Validate(cat *data.Catalog) error {
	for _, p := range q.Preds {
		if p.Param != 0 || p.Param2 != 0 {
			return fmt.Errorf("query: unbound parameter in predicate %s (bind the prepared statement first)", p)
		}
	}
	return q.ValidateShape(cat)
}

// ValidateShape is Validate for prepared-statement templates: identical
// reference and column checking, but placeholder predicates are allowed
// to remain unbound.
func (q *Query) ValidateShape(cat *data.Catalog) error {
	byAlias := make(map[string]string, len(q.Refs))
	for _, r := range q.Refs {
		if _, dup := byAlias[r.Alias]; dup {
			return fmt.Errorf("query: duplicate alias %q", r.Alias)
		}
		t := cat.Table(r.Table)
		if t == nil {
			return fmt.Errorf("query: unknown table %q", r.Table)
		}
		byAlias[r.Alias] = r.Table
	}
	checkCol := func(alias, col string) error {
		tn, ok := byAlias[alias]
		if !ok {
			return fmt.Errorf("query: unknown alias %q", alias)
		}
		if cat.Table(tn).Column(col) == nil {
			return fmt.Errorf("query: unknown column %s.%s (table %s)", alias, col, tn)
		}
		return nil
	}
	for _, j := range q.Joins {
		if err := checkCol(j.LeftAlias, j.LeftCol); err != nil {
			return err
		}
		if err := checkCol(j.RightAlias, j.RightCol); err != nil {
			return err
		}
	}
	for _, p := range q.Preds {
		if err := checkCol(p.Alias, p.Column); err != nil {
			return err
		}
	}
	if q.Agg.Kind != AggCount {
		if err := checkCol(q.Agg.Alias, q.Agg.Column); err != nil {
			return err
		}
	}
	return nil
}
