package query

import (
	"strings"
	"testing"

	"lqo/internal/data"
)

func twoTableCatalog() *data.Catalog {
	cat := data.NewCatalog()
	a := &data.Column{Name: "id", Kind: data.Int}
	b := &data.Column{Name: "x", Kind: data.Int}
	for i := 0; i < 5; i++ {
		a.AppendInt(int64(i))
		b.AppendInt(int64(i * 2))
	}
	cat.Add(data.NewTable("t1", a, b))
	c := &data.Column{Name: "id", Kind: data.Int}
	d := &data.Column{Name: "t1_id", Kind: data.Int}
	for i := 0; i < 5; i++ {
		c.AppendInt(int64(i))
		d.AppendInt(int64(i))
	}
	cat.Add(data.NewTable("t2", c, d))
	return cat
}

func sampleQuery() *Query {
	return &Query{
		Refs: []TableRef{{Alias: "t1", Table: "t1"}, {Alias: "t2", Table: "t2"}},
		Joins: []Join{{
			LeftAlias: "t1", LeftCol: "id", RightAlias: "t2", RightCol: "t1_id",
		}},
		Preds: []Pred{{Alias: "t1", Column: "x", Op: Gt, Val: data.IntVal(3)}},
	}
}

func TestPredMatches(t *testing.T) {
	cases := []struct {
		p    Pred
		v    float64
		want bool
	}{
		{Pred{Op: Eq, Val: data.IntVal(5)}, 5, true},
		{Pred{Op: Eq, Val: data.IntVal(5)}, 4, false},
		{Pred{Op: Ne, Val: data.IntVal(5)}, 4, true},
		{Pred{Op: Lt, Val: data.IntVal(5)}, 4, true},
		{Pred{Op: Lt, Val: data.IntVal(5)}, 5, false},
		{Pred{Op: Le, Val: data.IntVal(5)}, 5, true},
		{Pred{Op: Gt, Val: data.IntVal(5)}, 6, true},
		{Pred{Op: Ge, Val: data.IntVal(5)}, 5, true},
		{Pred{Op: Between, Val: data.IntVal(2), Val2: data.IntVal(4)}, 3, true},
		{Pred{Op: Between, Val: data.IntVal(2), Val2: data.IntVal(4)}, 5, false},
		{Pred{Op: Between, Val: data.IntVal(2), Val2: data.IntVal(4)}, 2, true},
	}
	for i, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("case %d: Matches(%v) = %v, want %v", i, c.v, got, c.want)
		}
	}
}

func TestPredBounds(t *testing.T) {
	p := Pred{Op: Le, Val: data.IntVal(7)}
	lo, hi := p.Bounds(0, 100)
	if lo != 0 || hi != 7 {
		t.Fatalf("Le bounds = [%v, %v]", lo, hi)
	}
	p = Pred{Op: Between, Val: data.IntVal(3), Val2: data.IntVal(9)}
	lo, hi = p.Bounds(0, 100)
	if lo != 3 || hi != 9 {
		t.Fatalf("Between bounds = [%v, %v]", lo, hi)
	}
	p = Pred{Op: Ne, Val: data.IntVal(3)}
	lo, hi = p.Bounds(0, 100)
	if lo != 0 || hi != 100 {
		t.Fatalf("Ne bounds = [%v, %v]", lo, hi)
	}
}

func TestQueryValidate(t *testing.T) {
	cat := twoTableCatalog()
	q := sampleQuery()
	if err := q.Validate(cat); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := sampleQuery()
	bad.Preds[0].Column = "nope"
	if err := bad.Validate(cat); err == nil {
		t.Fatal("unknown column accepted")
	}
	bad2 := sampleQuery()
	bad2.Refs = append(bad2.Refs, TableRef{Alias: "t1", Table: "t1"})
	if err := bad2.Validate(cat); err == nil {
		t.Fatal("duplicate alias accepted")
	}
	bad3 := sampleQuery()
	bad3.Joins[0].RightAlias = "zz"
	if err := bad3.Validate(cat); err == nil {
		t.Fatal("unknown join alias accepted")
	}
}

func TestQueryKeyOrderInvariant(t *testing.T) {
	q1 := sampleQuery()
	q2 := sampleQuery()
	// Reverse clause orders and flip the join.
	q2.Refs[0], q2.Refs[1] = q2.Refs[1], q2.Refs[0]
	q2.Joins[0] = Join{LeftAlias: "t2", LeftCol: "t1_id", RightAlias: "t1", RightCol: "id"}
	if q1.Key() != q2.Key() {
		t.Fatalf("Key not order-invariant:\n%s\n%s", q1.Key(), q2.Key())
	}
}

func TestSubquery(t *testing.T) {
	q := sampleQuery()
	sub := q.Subquery(map[string]bool{"t1": true})
	if len(sub.Refs) != 1 || len(sub.Joins) != 0 || len(sub.Preds) != 1 {
		t.Fatalf("Subquery(t1) = %+v", sub)
	}
	both := q.Subquery(map[string]bool{"t1": true, "t2": true})
	if len(both.Joins) != 1 {
		t.Fatalf("Subquery(all) lost join")
	}
}

func TestSQLRendering(t *testing.T) {
	q := sampleQuery()
	sql := q.SQL()
	for _, frag := range []string{"SELECT COUNT(*)", "FROM t1, t2", "t1.id = t2.t1_id", "t1.x > 3"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("SQL missing %q: %s", frag, sql)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := sampleQuery()
	c := q.Clone()
	c.Preds[0].Column = "changed"
	c.Refs[0].Alias = "zz"
	if q.Preds[0].Column != "x" || q.Refs[0].Alias != "t1" {
		t.Fatal("Clone shares state")
	}
}

func TestJoinGraphConnectivity(t *testing.T) {
	q := &Query{
		Refs: []TableRef{{"a", "a"}, {"b", "b"}, {"c", "c"}},
		Joins: []Join{
			{LeftAlias: "a", LeftCol: "x", RightAlias: "b", RightCol: "y"},
			{LeftAlias: "b", LeftCol: "y", RightAlias: "c", RightCol: "z"},
		},
	}
	g := NewJoinGraph(q)
	if !g.Connected(SetOf([]string{"a", "b", "c"})) {
		t.Fatal("chain should be connected")
	}
	if g.Connected(SetOf([]string{"a", "c"})) {
		t.Fatal("a,c not adjacent")
	}
	if !g.Connected(SetOf([]string{"a"})) {
		t.Fatal("singleton should be connected")
	}
	if g.Connected(map[string]bool{}) {
		t.Fatal("empty set should not be connected")
	}
	if !g.ConnectsTo("c", SetOf([]string{"b"})) {
		t.Fatal("c should connect to {b}")
	}
	if g.ConnectsTo("c", SetOf([]string{"a"})) {
		t.Fatal("c should not connect to {a}")
	}
	nb := g.Neighbors("b")
	if len(nb) != 2 || nb[0] != "a" || nb[1] != "c" {
		t.Fatalf("Neighbors(b) = %v", nb)
	}
}

func TestConnectedSubsets(t *testing.T) {
	q := &Query{
		Refs: []TableRef{{"a", "a"}, {"b", "b"}, {"c", "c"}},
		Joins: []Join{
			{LeftAlias: "a", LeftCol: "x", RightAlias: "b", RightCol: "y"},
			{LeftAlias: "b", LeftCol: "y", RightAlias: "c", RightCol: "z"},
		},
	}
	g := NewJoinGraph(q)
	subs := g.ConnectedSubsets(0)
	// Chain a-b-c: {a},{b},{c},{ab},{bc},{abc} = 6 connected subsets.
	if len(subs) != 6 {
		t.Fatalf("got %d subsets: %v", len(subs), subs)
	}
	// Large-path and bitmask enumerations must agree.
	large := g.connectedSubsetsLarge(3)
	if len(large) != len(subs) {
		t.Fatalf("large enumeration disagrees: %d vs %d", len(large), len(subs))
	}
	for i := range subs {
		if joinKey(subs[i]) != joinKey(large[i]) {
			t.Fatalf("subset %d differs: %v vs %v", i, subs[i], large[i])
		}
	}
}

func TestJoinsBetween(t *testing.T) {
	q := sampleQuery()
	g := NewJoinGraph(q)
	js := g.JoinsBetween(SetOf([]string{"t1"}), SetOf([]string{"t2"}))
	if len(js) != 1 {
		t.Fatalf("JoinsBetween = %v", js)
	}
	none := g.JoinsBetween(SetOf([]string{"t1"}), SetOf([]string{"t1"}))
	if len(none) != 0 {
		t.Fatalf("self JoinsBetween = %v", none)
	}
}

func TestDeriveSchemaEdges(t *testing.T) {
	cat := twoTableCatalog()
	edges := DeriveSchemaEdges(cat)
	if len(edges) != 1 {
		t.Fatalf("edges = %v", edges)
	}
	e := edges[0]
	// The edge key is side-normalized: discovering the FK from either
	// direction yields the same identifier.
	flipped := SchemaEdge{T1: e.T2, C1: e.C2, T2: e.T1, C2: e.C1}
	if e.Key() != flipped.Key() {
		t.Fatalf("edge key not side-normalized: %s vs %s", e.Key(), flipped.Key())
	}
	if (SchemaEdge{T1: "t1", C1: "id", T2: "t9", C2: "t1_id"}).Key() == e.Key() {
		t.Fatal("distinct edges share a key")
	}
}

func TestResolveFKTargetHeuristics(t *testing.T) {
	cat := data.NewCatalog()
	u := data.NewTable("users", &data.Column{Name: "id", Kind: data.Int})
	cat.Add(u)
	if got := resolveFKTarget(cat, "owner_user_id"); got != "users" {
		t.Fatalf("owner_user_id → %q, want users", got)
	}
	if got := resolveFKTarget(cat, "user_id"); got != "users" {
		t.Fatalf("user_id → %q, want users", got)
	}
	if got := resolveFKTarget(cat, "missing_id"); got != "" {
		t.Fatalf("missing_id → %q, want empty", got)
	}
}
