package query

import "fmt"

// AggKind is the aggregate computed by a query. The workbench's unit of
// interest is COUNT(*) (cardinality), but the engine also evaluates the
// other standard aggregates over a column of the join result.
type AggKind int

// Supported aggregates.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Agg describes the query's aggregate target. The zero value is COUNT(*).
type Agg struct {
	Kind   AggKind
	Alias  string // empty for COUNT(*)
	Column string
}

// String renders the aggregate expression.
func (a Agg) String() string {
	if a.Kind == AggCount {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s.%s)", a.Kind, a.Alias, a.Column)
}
