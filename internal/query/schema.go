package query

import (
	"sort"
	"strings"

	"lqo/internal/data"
)

// SchemaEdge is a table-level equi-join edge implied by the schema's
// foreign-key naming convention ("x_id" → table x's "id" column).
type SchemaEdge struct {
	T1, C1 string
	T2, C2 string
}

// Key returns the canonical edge identifier, side-normalized so the
// same edge hashes identically whichever way it was discovered. Encoded
// through KeyBuilder like every other key in the module: table/column
// names are length-prefixed, so names containing "."/"=" cannot make
// two distinct edges collide.
func (e SchemaEdge) Key() string {
	t1, c1, t2, c2 := e.T1, e.C1, e.T2, e.C2
	if t1 > t2 || (t1 == t2 && c1 > c2) {
		t1, c1, t2, c2 = t2, c2, t1, c1
	}
	var k KeyBuilder
	k.Raw("e(").Atom(t1).Raw(".").Atom(c1).Raw("=").Atom(t2).Raw(".").Atom(c2).Raw(")")
	return k.String()
}

// label is the edge's display form, used only to order DeriveSchemaEdges
// output. It intentionally keeps the pre-KeyBuilder rendering so the
// deterministic edge order (and every seeded workload generated from it)
// is stable across the key-encoding change; identity/dedup goes through
// Key, never label.
func (e SchemaEdge) label() string {
	a, b := e.T1+"."+e.C1, e.T2+"."+e.C2
	if a > b {
		a, b = b, a
	}
	return a + "=" + b
}

// DeriveSchemaEdges returns the catalog's table-level join edges: declared
// foreign keys first, then edges inferred from FK naming (every column
// ending in "_id" joins the "id" column of the table its prefix names,
// with plural/singular and prefix-match heuristics).
func DeriveSchemaEdges(cat *data.Catalog) []SchemaEdge {
	var out []SchemaEdge
	seen := map[string]bool{}
	for _, fk := range cat.FKs() {
		e := SchemaEdge{T1: fk.Table, C1: fk.Column, T2: fk.RefTable, C2: fk.RefColumn}
		if !seen[e.Key()] {
			seen[e.Key()] = true
			out = append(out, e)
		}
	}
	for _, tn := range cat.TableNames() {
		t := cat.Table(tn)
		for _, c := range t.Cols {
			if c.Name == "id" || !strings.HasSuffix(c.Name, "_id") {
				continue
			}
			target := resolveFKTarget(cat, c.Name)
			if target == "" || cat.Table(target) == nil || cat.Table(target).Column("id") == nil {
				continue
			}
			e := SchemaEdge{T1: tn, C1: c.Name, T2: target, C2: "id"}
			if !seen[e.Key()] {
				seen[e.Key()] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label() < out[j].label() })
	return out
}

// resolveFKTarget guesses the referenced table of an FK column name.
func resolveFKTarget(cat *data.Catalog, fkCol string) string {
	base := strings.TrimSuffix(fkCol, "_id")
	for _, cand := range []string{base, base + "s", base + "es"} {
		if cat.Table(cand) != nil {
			return cand
		}
	}
	// owner_user_id → users: try each underscore-separated suffix word.
	parts := strings.Split(base, "_")
	for i := len(parts) - 1; i >= 0; i-- {
		w := parts[i]
		for _, cand := range []string{w, w + "s", w + "es"} {
			if cat.Table(cand) != nil {
				return cand
			}
		}
	}
	// supp_id → supplier, cust_id → customer: unique prefix match.
	var match string
	for _, tn := range cat.TableNames() {
		if strings.HasPrefix(tn, base) {
			if match != "" {
				return "" // ambiguous
			}
			match = tn
		}
	}
	return match
}
