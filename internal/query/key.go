package query

import (
	"math"
	"strconv"
	"strings"

	"lqo/internal/data"
)

// KeyBuilder assembles the canonical, collision-safe cache keys used by
// Query.Key, plan fingerprints and the serving layer's plan cache. The
// old ad-hoc formats joined components with bare ","/";"/"|"/")"
// delimiters, so any alias, table, column or literal containing a
// delimiter could make two distinct queries (or plans) render the same
// key — latent until a cache keys on it, then silent wrong results.
//
// The encoding is prefix-free by construction: every piece of variable
// content is length-prefixed ("5:ab|cd"), so no embedded byte can ever
// be confused with structure; fixed structural markers (Raw) come from a
// small static vocabulary and always follow a self-delimiting segment.
// Numeric literals render through CanonNum so semantically identical
// values ("1e+06" vs "1000000") hash to the same entry.
//
// The zero KeyBuilder is ready to use. All key construction in the
// module must go through this type — the keycanon analyzer in
// cmd/lqo-lint rejects raw strings.Join/Sprintf/concat key building.
type KeyBuilder struct {
	b strings.Builder
}

// Raw appends a fixed structural marker. Only static vocabulary — never
// user- or data-derived content, which must go through Atom or Num.
func (k *KeyBuilder) Raw(s string) *KeyBuilder {
	k.b.WriteString(s)
	return k
}

// Atom appends arbitrary variable content, length-prefixed so embedded
// delimiter bytes cannot collide with key structure.
func (k *KeyBuilder) Atom(s string) *KeyBuilder {
	k.b.WriteString(strconv.Itoa(len(s)))
	k.b.WriteByte(':')
	k.b.WriteString(s)
	return k
}

// Num appends a numeric literal in canonical form (see CanonNum),
// length-prefixed like any other atom.
func (k *KeyBuilder) Num(v data.Value) *KeyBuilder {
	return k.Atom(CanonNum(v))
}

// Append concatenates an already-encoded segment produced by another
// KeyBuilder (segments are self-delimiting, so no separator is needed).
func (k *KeyBuilder) Append(seg string) *KeyBuilder {
	k.b.WriteString(seg)
	return k
}

// String returns the assembled key.
func (k *KeyBuilder) String() string {
	return k.b.String()
}

// CanonNum renders a value canonically for key purposes: every integral
// number inside the exact-int53 window prints as plain decimal digits,
// whatever its Kind, so IntVal(1000000) and FloatVal(1e6) — the same
// predicate semantically — share one key instead of drifting apart as
// "1000000" vs "1e+06". Non-integral and out-of-window floats use the
// shortest round-trip form, which is canonical per float64 bit pattern;
// huge integral floats (≥2^53) deliberately stay distinct from exact
// int64 literals because their match semantics genuinely differ
// (Pred.MatchesInt compares exactly, the float path conflates adjacent
// keys).
func CanonNum(v data.Value) string {
	if v.K != data.Float {
		return strconv.FormatInt(v.I, 10)
	}
	f := v.F
	if f == math.Trunc(f) && math.Abs(f) < 1<<53 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// appendKey writes the predicate's canonical key segment. Params render
// as "?N" ordinals so a prepared statement's shape key captures binding
// structure without literal values; length-prefixed atoms guarantee a
// bound literal can never collide with the structural "?" marker.
func (p Pred) appendKey(k *KeyBuilder) {
	k.Raw("p(").Atom(p.Alias).Raw(".").Atom(p.Column).Raw(p.Op.String())
	if p.Param != 0 {
		k.Raw("?").Atom(strconv.Itoa(p.Param))
	} else {
		k.Num(p.Val)
	}
	if p.Op == Between {
		k.Raw("&")
		if p.Param2 != 0 {
			k.Raw("?").Atom(strconv.Itoa(p.Param2))
		} else {
			k.Num(p.Val2)
		}
	}
	k.Raw(")")
}

// KeyString returns the predicate's canonical key segment.
func (p Pred) KeyString() string {
	var k KeyBuilder
	p.appendKey(&k)
	return k.String()
}

// appendKey writes the join edge's canonical key segment, preserving
// operand order (plan join conditions are order-sensitive; Query.Key
// normalizes sides before calling this).
func (j Join) appendKey(k *KeyBuilder) {
	k.Raw("j(").Atom(j.LeftAlias).Raw(".").Atom(j.LeftCol).Raw("=").Atom(j.RightAlias).Raw(".").Atom(j.RightCol).Raw(")")
}

// KeyString returns the join edge's canonical key segment.
func (j Join) KeyString() string {
	var k KeyBuilder
	j.appendKey(&k)
	return k.String()
}
