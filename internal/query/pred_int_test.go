package query

import (
	"testing"

	"lqo/internal/data"
)

// TestMatchesIntLargeKeys is the regression test for exact int64
// predicate compares: float64 cannot represent every int64 above 2^53,
// so the old float path conflated adjacent large keys (2^53 and 2^53+1
// both become 9007199254740992.0). MatchesInt must distinguish them.
func TestMatchesIntLargeKeys(t *testing.T) {
	const big = int64(1) << 53 // 9007199254740992; big+1 is not a float64
	cases := []struct {
		name string
		p    Pred
		v    int64
		want bool
	}{
		{"eq-exact", Pred{Op: Eq, Val: data.IntVal(big + 1)}, big + 1, true},
		{"eq-adjacent", Pred{Op: Eq, Val: data.IntVal(big + 1)}, big, false},
		{"ne-adjacent", Pred{Op: Ne, Val: data.IntVal(big + 1)}, big, true},
		{"lt-adjacent", Pred{Op: Lt, Val: data.IntVal(big + 1)}, big, true},
		{"le-exact", Pred{Op: Le, Val: data.IntVal(big)}, big + 1, false},
		{"gt-adjacent", Pred{Op: Gt, Val: data.IntVal(big)}, big + 1, true},
		{"ge-adjacent", Pred{Op: Ge, Val: data.IntVal(big + 1)}, big, false},
		{"between-tight", Pred{Op: Between, Val: data.IntVal(big + 1), Val2: data.IntVal(big + 1)}, big, false},
		{"between-hit", Pred{Op: Between, Val: data.IntVal(big + 1), Val2: data.IntVal(big + 2)}, big + 2, true},
	}
	for _, tc := range cases {
		if got := tc.p.MatchesInt(tc.v); got != tc.want {
			t.Errorf("%s: MatchesInt(%d) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
		// The float path demonstrably cannot make some of these
		// distinctions; MatchesInt on small keys must still agree with it.
	}

	// Small keys: MatchesInt agrees with the float Matches path.
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		for v := int64(-3); v <= 3; v++ {
			p := Pred{Op: op, Val: data.IntVal(1)}
			if got, want := p.MatchesInt(v), p.Matches(float64(v)); got != want {
				t.Errorf("op %s v=%d: MatchesInt=%v Matches=%v", op, v, got, want)
			}
		}
	}

	// Mixed kinds: a float literal against an int value keeps the float
	// semantics of Matches.
	mixed := Pred{Op: Gt, Val: data.FloatVal(2.5)}
	if !mixed.MatchesInt(3) || mixed.MatchesInt(2) {
		t.Error("mixed-kind predicate lost float semantics")
	}
	mb := Pred{Op: Between, Val: data.IntVal(1), Val2: data.FloatVal(2.5)}
	if !mb.MatchesInt(2) || mb.MatchesInt(3) {
		t.Error("mixed-kind Between lost float semantics")
	}
}
