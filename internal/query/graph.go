package query

import "sort"

// JoinGraph is the undirected graph whose vertices are query aliases and
// whose edges are equi-join conditions. Plan enumerators and sub-query
// generators operate on it.
type JoinGraph struct {
	Aliases []string
	adj     map[string][]Join
}

// NewJoinGraph builds the join graph of q.
func NewJoinGraph(q *Query) *JoinGraph {
	g := &JoinGraph{Aliases: q.Aliases(), adj: make(map[string][]Join)}
	for _, j := range q.Joins {
		g.adj[j.LeftAlias] = append(g.adj[j.LeftAlias], j)
		g.adj[j.RightAlias] = append(g.adj[j.RightAlias], j)
	}
	return g
}

// Edges returns the join edges incident to alias.
func (g *JoinGraph) Edges(alias string) []Join { return g.adj[alias] }

// Neighbors returns the sorted distinct neighbor aliases of alias.
func (g *JoinGraph) Neighbors(alias string) []string {
	seen := map[string]bool{}
	for _, j := range g.adj[alias] {
		o := j.Other(alias)
		if o != "" {
			seen[o] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Connected reports whether the alias subset induces a connected subgraph.
// Singleton sets are connected; the empty set is not.
func (g *JoinGraph) Connected(set map[string]bool) bool {
	if len(set) == 0 {
		return false
	}
	var start string
	for a := range set {
		start = a
		break
	}
	seen := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, j := range g.adj[a] {
			o := j.Other(a)
			if o != "" && set[o] && !seen[o] {
				seen[o] = true
				stack = append(stack, o)
			}
		}
	}
	return len(seen) == len(set)
}

// ConnectsTo reports whether any join edge links alias to a member of set.
func (g *JoinGraph) ConnectsTo(alias string, set map[string]bool) bool {
	for _, j := range g.adj[alias] {
		if o := j.Other(alias); o != "" && set[o] {
			return true
		}
	}
	return false
}

// JoinsBetween returns the join edges with one side in left and the other
// in right.
func (g *JoinGraph) JoinsBetween(left, right map[string]bool) []Join {
	var out []Join
	seen := map[string]bool{}
	for a := range left {
		for _, j := range g.adj[a] {
			o := j.Other(a)
			if o == "" || !right[o] {
				continue
			}
			k := j.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, j)
			}
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].String() < out[k].String() })
	return out
}

// ConnectedSubsets enumerates all connected alias subsets of size 1..maxSize
// (0 means no limit). Each subset is returned as a sorted slice. The
// enumeration order is deterministic.
func (g *JoinGraph) ConnectedSubsets(maxSize int) [][]string {
	n := len(g.Aliases)
	if maxSize <= 0 || maxSize > n {
		maxSize = n
	}
	var out [][]string
	if n > 20 {
		// Bitmask enumeration is infeasible; grow subsets by BFS expansion.
		return g.connectedSubsetsLarge(maxSize)
	}
	idx := make(map[string]int, n)
	for i, a := range g.Aliases {
		idx[a] = i
	}
	for mask := 1; mask < 1<<n; mask++ {
		size := popcount(uint(mask))
		if size > maxSize {
			continue
		}
		set := make(map[string]bool, size)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set[g.Aliases[i]] = true
			}
		}
		if !g.Connected(set) {
			continue
		}
		sub := make([]string, 0, size)
		for a := range set {
			sub = append(sub, a)
		}
		sort.Strings(sub)
		out = append(out, sub)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return joinKey(out[i]) < joinKey(out[j])
	})
	return out
}

func (g *JoinGraph) connectedSubsetsLarge(maxSize int) [][]string {
	seen := map[string]bool{}
	var out [][]string
	frontier := make([]map[string]bool, 0, len(g.Aliases))
	for _, a := range g.Aliases {
		s := map[string]bool{a: true}
		frontier = append(frontier, s)
		out = append(out, []string{a})
		seen[a] = true
	}
	for size := 2; size <= maxSize; size++ {
		var next []map[string]bool
		for _, s := range frontier {
			for a := range s {
				for _, nb := range g.Neighbors(a) {
					if s[nb] {
						continue
					}
					grown := make(map[string]bool, len(s)+1)
					for k := range s {
						grown[k] = true
					}
					grown[nb] = true
					lst := setToSorted(grown)
					k := joinKey(lst)
					if seen[k] {
						continue
					}
					seen[k] = true
					next = append(next, grown)
					out = append(out, lst)
				}
			}
		}
		frontier = next
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return joinKey(out[i]) < joinKey(out[j])
	})
	return out
}

func setToSorted(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func joinKey(sorted []string) string {
	k := ""
	for i, s := range sorted {
		if i > 0 {
			k += ","
		}
		k += s
	}
	return k
}

func popcount(x uint) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// SetOf converts an alias slice into a set.
func SetOf(aliases []string) map[string]bool {
	s := make(map[string]bool, len(aliases))
	for _, a := range aliases {
		s[a] = true
	}
	return s
}
