package data

import (
	"math"
	"testing"
)

// TestZoneMapIntBounds checks per-block min/max over a multi-block Int
// column with a ragged tail block.
func TestZoneMapIntBounds(t *testing.T) {
	n := 2*ZoneBlockSize + 100
	c := &Column{Name: "k", Kind: Int}
	for i := 0; i < n; i++ {
		c.Ints = append(c.Ints, int64(i))
	}
	zm := c.Zones()
	if zm.NumBlocks != ZoneBlocks(n) || zm.NumBlocks != 3 {
		t.Fatalf("NumBlocks = %d, want 3", zm.NumBlocks)
	}
	for b := 0; b < zm.NumBlocks; b++ {
		lo := int64(b * ZoneBlockSize)
		hi := lo + ZoneBlockSize - 1
		if b == zm.NumBlocks-1 {
			hi = int64(n - 1)
		}
		if zm.IntMin[b] != lo || zm.IntMax[b] != hi {
			t.Fatalf("block %d: [%d, %d], want [%d, %d]", b, zm.IntMin[b], zm.IntMax[b], lo, hi)
		}
	}
	if c.Zones() != zm {
		t.Fatal("second Zones call rebuilt the map instead of returning the cache")
	}
}

// TestZoneMapFloatNaN checks Float zone maps: NaN values are excluded
// from the bounds and an all-NaN block is flagged Empty.
func TestZoneMapFloatNaN(t *testing.T) {
	n := 2 * ZoneBlockSize
	c := &Column{Name: "f", Kind: Float}
	for i := 0; i < n; i++ {
		switch {
		case i/ZoneBlockSize == 1:
			c.Flts = append(c.Flts, math.NaN()) // whole second block NaN
		case i%7 == 0:
			c.Flts = append(c.Flts, math.NaN())
		default:
			c.Flts = append(c.Flts, float64(i%100))
		}
	}
	zm := c.Zones()
	if zm.Empty[0] {
		t.Fatal("block 0 flagged Empty despite comparable values")
	}
	if zm.FltMin[0] != 0 || zm.FltMax[0] != 99 {
		t.Fatalf("block 0 bounds [%v, %v], want [0, 99]", zm.FltMin[0], zm.FltMax[0])
	}
	if !zm.Empty[1] {
		t.Fatal("all-NaN block 1 not flagged Empty")
	}
}

// TestZoneMapEmptyColumn: a zero-row column yields a zero-block map.
func TestZoneMapEmptyColumn(t *testing.T) {
	for _, kind := range []Kind{Int, Float, String} {
		c := &Column{Name: "e", Kind: kind}
		if zm := c.Zones(); zm.NumBlocks != 0 {
			t.Fatalf("kind %v: empty column has %d blocks", kind, zm.NumBlocks)
		}
	}
}

// TestColumnCachesInvalidateOnAppend checks that Zones, MinMax and
// DistinctCount are cached across calls and dropped by every Append*
// mutator, so post-mutation reads see the new data.
func TestColumnCachesInvalidateOnAppend(t *testing.T) {
	c := &Column{Name: "k", Kind: Int}
	for i := 0; i < 10; i++ {
		c.AppendInt(int64(i))
	}
	lo, hi, ok := c.MinMax()
	if !ok || lo != 0 || hi != 9 {
		t.Fatalf("MinMax = (%v, %v, %v), want (0, 9, true)", lo, hi, ok)
	}
	if d := c.DistinctCount(); d != 10 {
		t.Fatalf("DistinctCount = %d, want 10", d)
	}
	zm := c.Zones()
	if zm.IntMax[0] != 9 {
		t.Fatalf("zone max = %d, want 9", zm.IntMax[0])
	}

	c.AppendInt(100)
	if lo, hi, _ := c.MinMax(); lo != 0 || hi != 100 {
		t.Fatalf("post-append MinMax = (%v, %v), want (0, 100)", lo, hi)
	}
	if d := c.DistinctCount(); d != 11 {
		t.Fatalf("post-append DistinctCount = %d, want 11", d)
	}
	if zm2 := c.Zones(); zm2 == zm || zm2.IntMax[0] != 100 {
		t.Fatalf("post-append Zones stale: max = %d, want 100", zm2.IntMax[0])
	}

	f := &Column{Name: "f", Kind: Float}
	f.AppendFloat(1.5)
	f.MinMax()
	f.AppendFloat(-3)
	if lo, _, _ := f.MinMax(); lo != -3 {
		t.Fatalf("float post-append MinMax lo = %v, want -3", lo)
	}

	s := &Column{Name: "s", Kind: String}
	s.AppendString("a")
	s.DistinctCount()
	s.AppendString("b")
	if d := s.DistinctCount(); d != 2 {
		t.Fatalf("string post-append DistinctCount = %d, want 2", d)
	}
}

// TestMinMaxEmpty pins ok=false (and a cached re-read) on empty columns.
func TestMinMaxEmpty(t *testing.T) {
	c := &Column{Name: "e", Kind: Int}
	if _, _, ok := c.MinMax(); ok {
		t.Fatal("empty column reported MinMax ok")
	}
	if _, _, ok := c.MinMax(); ok {
		t.Fatal("cached empty MinMax reported ok")
	}
}
