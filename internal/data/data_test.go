package data

import (
	"testing"
	"testing/quick"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	words := []string{"alpha", "beta", "gamma", "alpha", "beta"}
	codes := make([]int64, len(words))
	for i, w := range words {
		codes[i] = d.Code(w)
	}
	if codes[0] != codes[3] || codes[1] != codes[4] {
		t.Fatalf("re-interning changed codes: %v", codes)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	for i, w := range words {
		if got := d.Str(codes[i]); got != w {
			t.Errorf("Str(%d) = %q, want %q", codes[i], got, w)
		}
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup(missing) reported present")
	}
	if d.Str(99) != "" {
		t.Error("Str out of range should be empty")
	}
}

func TestDictCodesAreDense(t *testing.T) {
	err := quick.Check(func(words []string) bool {
		d := NewDict()
		for _, w := range words {
			c := d.Code(w)
			if c < 0 || c >= int64(d.Len()) {
				return false
			}
			if d.Str(c) != w {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestValueCompareAndFloat(t *testing.T) {
	if IntVal(3).Compare(IntVal(5)) != -1 {
		t.Error("3 < 5 failed")
	}
	if FloatVal(2.5).Compare(IntVal(2)) != 1 {
		t.Error("2.5 > 2 failed")
	}
	if IntVal(7).Compare(FloatVal(7)) != 0 {
		t.Error("7 == 7.0 failed")
	}
	if got := IntVal(4).AsFloat(); got != 4 {
		t.Errorf("AsFloat = %v", got)
	}
}

func newTestTable(t *testing.T) *Table {
	t.Helper()
	a := &Column{Name: "a", Kind: Int}
	b := &Column{Name: "b", Kind: Float}
	s := &Column{Name: "s", Kind: String}
	for i := 0; i < 10; i++ {
		a.AppendInt(int64(i % 3))
		b.AppendFloat(float64(i) / 2)
		s.AppendString([]string{"x", "y"}[i%2])
	}
	tbl := NewTable("t", a, b, s)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := newTestTable(t)
	if tbl.NumRows() != 10 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if tbl.Column("a") == nil || tbl.Column("missing") != nil {
		t.Fatal("Column lookup broken")
	}
	got := tbl.ColumnNames()
	want := []string{"a", "b", "s"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColumnNames = %v", got)
		}
	}
}

func TestColumnMinMaxDistinct(t *testing.T) {
	tbl := newTestTable(t)
	a := tbl.Column("a")
	lo, hi, ok := a.MinMax()
	if !ok || lo != 0 || hi != 2 {
		t.Fatalf("MinMax = %v %v %v", lo, hi, ok)
	}
	if d := a.DistinctCount(); d != 3 {
		t.Fatalf("DistinctCount = %d", d)
	}
	b := tbl.Column("b")
	if d := b.DistinctCount(); d != 10 {
		t.Fatalf("float DistinctCount = %d", d)
	}
	empty := &Column{Name: "e", Kind: Int}
	if _, _, ok := empty.MinMax(); ok {
		t.Fatal("empty MinMax should report !ok")
	}
}

func TestIndexRows(t *testing.T) {
	tbl := newTestTable(t)
	ix, err := tbl.BuildIndex("a")
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumKeys() != 3 {
		t.Fatalf("NumKeys = %d", ix.NumKeys())
	}
	rows := ix.Rows(1)
	// Values 1 occur at rows 1, 4, 7.
	want := []int32{1, 4, 7}
	if len(rows) != len(want) {
		t.Fatalf("Rows(1) = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("Rows(1) = %v, want %v", rows, want)
		}
	}
	if tbl.Index("a") != ix {
		t.Fatal("Index not registered")
	}
	if _, err := tbl.BuildIndex("b"); err == nil {
		t.Fatal("float index should fail")
	}
	if _, err := tbl.BuildIndex("nope"); err == nil {
		t.Fatal("missing column index should fail")
	}
}

func TestIndexCoversAllRows(t *testing.T) {
	err := quick.Check(func(vals []int16) bool {
		c := &Column{Name: "v", Kind: Int}
		for _, v := range vals {
			c.AppendInt(int64(v))
		}
		tbl := NewTable("q", c)
		ix, err := tbl.BuildIndex("v")
		if err != nil {
			return false
		}
		// Every row id must be reachable exactly once through its value.
		seen := map[int32]bool{}
		for _, v := range vals {
			for _, r := range ix.Rows(int64(v)) {
				seen[r] = true
			}
		}
		return len(seen) == len(vals)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	tbl := newTestTable(t)
	cat.Add(tbl)
	if cat.Table("t") != tbl || cat.Table("x") != nil {
		t.Fatal("catalog lookup broken")
	}
	if cat.TotalRows() != 10 {
		t.Fatalf("TotalRows = %d", cat.TotalRows())
	}
	names := cat.TableNames()
	if len(names) != 1 || names[0] != "t" {
		t.Fatalf("TableNames = %v", names)
	}
	// Replacement keeps a single entry.
	cat.Add(NewTable("t"))
	if len(cat.TableNames()) != 1 {
		t.Fatal("duplicate name added twice")
	}
}

func TestSortedDistinct(t *testing.T) {
	c := &Column{Name: "v", Kind: Int}
	for _, v := range []int64{5, 3, 5, 1, 3} {
		c.AppendInt(v)
	}
	got := SortedDistinct(c)
	want := []float64{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("SortedDistinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedDistinct = %v, want %v", got, want)
		}
	}
}

func TestValidateCatchesRaggedColumns(t *testing.T) {
	a := &Column{Name: "a", Kind: Int}
	b := &Column{Name: "b", Kind: Int}
	a.AppendInt(1)
	tbl := NewTable("bad", a, b)
	if err := tbl.Validate(); err == nil {
		t.Fatal("Validate should fail on ragged columns")
	}
}

func TestAddColumnDuplicateErrors(t *testing.T) {
	tbl := NewTable("t", &Column{Name: "a", Kind: Int})
	if err := tbl.AddColumn(&Column{Name: "a", Kind: Int}); err == nil {
		t.Fatal("expected error on duplicate column")
	}
	if err := tbl.AddColumn(&Column{Name: "b", Kind: Int}); err != nil {
		t.Fatalf("fresh column should add cleanly: %v", err)
	}
	if tbl.Column("b") == nil {
		t.Fatal("column b should exist after AddColumn")
	}
}
