package data

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Column is a typed, fully materialized column. Int and dictionary-encoded
// String columns store values in Ints; Float columns in Floats.
type Column struct {
	Name string
	Kind Kind
	Ints []int64
	Flts []float64
	Dict *Dict // non-nil iff Kind == String

	// Lazily built, atomically published summaries (see zonemap.go).
	// Append* invalidates all three.
	zones    atomic.Pointer[ZoneMap]
	mm       atomic.Pointer[minMaxCache]
	distinct atomic.Pointer[int64]
}

// Len returns the number of values stored.
func (c *Column) Len() int {
	if c.Kind == Float {
		return len(c.Flts)
	}
	return len(c.Ints)
}

// Value returns the value at row i.
func (c *Column) Value(i int) Value {
	if c.Kind == Float {
		return Value{K: Float, F: c.Flts[i]}
	}
	return Value{K: c.Kind, I: c.Ints[i]}
}

// Float returns the value at row i in the numeric domain.
func (c *Column) Float(i int) float64 {
	if c.Kind == Float {
		return c.Flts[i]
	}
	return float64(c.Ints[i])
}

// AppendInt appends v; the column must not be a Float column.
func (c *Column) AppendInt(v int64) {
	c.Ints = append(c.Ints, v)
	c.invalidate()
}

// AppendFloat appends v; the column must be a Float column.
func (c *Column) AppendFloat(v float64) {
	c.Flts = append(c.Flts, v)
	c.invalidate()
}

// AppendString interns s and appends its code; the column must be a String
// column.
func (c *Column) AppendString(s string) {
	if c.Dict == nil {
		c.Dict = NewDict()
	}
	c.Ints = append(c.Ints, c.Dict.Code(s))
	c.invalidate()
}

// MinMax returns the smallest and largest value in the numeric domain.
// ok is false for an empty column. The result is cached; Append*
// invalidates it.
func (c *Column) MinMax() (lo, hi float64, ok bool) {
	if s := c.mm.Load(); s != nil {
		return s.lo, s.hi, s.ok
	}
	s := &minMaxCache{}
	if n := c.Len(); n > 0 {
		s.lo, s.hi, s.ok = c.Float(0), c.Float(0), true
		for i := 1; i < n; i++ {
			v := c.Float(i)
			if v < s.lo {
				s.lo = v
			}
			if v > s.hi {
				s.hi = v
			}
		}
	}
	c.mm.Store(s)
	return s.lo, s.hi, s.ok
}

// DistinctCount returns the exact number of distinct values. The result
// is cached; Append* invalidates it.
func (c *Column) DistinctCount() int {
	if d := c.distinct.Load(); d != nil {
		return int(*d)
	}
	var n int
	if c.Kind == Float {
		seen := make(map[float64]struct{}, len(c.Flts))
		for _, v := range c.Flts {
			seen[v] = struct{}{}
		}
		n = len(seen)
	} else {
		seen := make(map[int64]struct{}, len(c.Ints))
		for _, v := range c.Ints {
			seen[v] = struct{}{}
		}
		n = len(seen)
	}
	d := int64(n)
	c.distinct.Store(&d)
	return n
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name   string
	Cols   []*Column
	byName map[string]int
	idx    map[string]*Index
}

// NewTable creates an empty table with the given column definitions.
func NewTable(name string, cols ...*Column) *Table {
	t := &Table{Name: name, Cols: cols, byName: make(map[string]int), idx: make(map[string]*Index)}
	for i, c := range cols {
		t.byName[c.Name] = i
	}
	return t
}

// AddColumn appends a column definition. A duplicate column name is
// reported as an error (it used to panic): schema loaders feed this from
// external input, and malformed input must degrade to an error the caller
// can surface, never crash the process.
func (t *Table) AddColumn(c *Column) error {
	if _, dup := t.byName[c.Name]; dup {
		return fmt.Errorf("data: duplicate column %s.%s", t.Name, c.Name)
	}
	t.byName[c.Name] = len(t.Cols)
	t.Cols = append(t.Cols, c)
	return nil
}

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column {
	i, ok := t.byName[name]
	if !ok {
		return nil
	}
	return t.Cols[i]
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
	}
	return names
}

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Validate checks that all columns have equal length.
func (t *Table) Validate() error {
	n := t.NumRows()
	for _, c := range t.Cols {
		if c.Len() != n {
			return fmt.Errorf("data: table %s column %s has %d rows, want %d", t.Name, c.Name, c.Len(), n)
		}
	}
	return nil
}

// Index is a value → sorted row-id mapping over a single column, used by
// index scans and hash-join builds on base tables.
type Index struct {
	Col  string
	rows map[int64][]int32
}

// BuildIndex constructs (or rebuilds) an equality index over the named
// column and registers it on the table. Float columns cannot be indexed.
func (t *Table) BuildIndex(col string) (*Index, error) {
	c := t.Column(col)
	if c == nil {
		return nil, fmt.Errorf("data: no column %s.%s", t.Name, col)
	}
	if c.Kind == Float {
		return nil, fmt.Errorf("data: cannot index float column %s.%s", t.Name, col)
	}
	ix := &Index{Col: col, rows: make(map[int64][]int32)}
	for i, v := range c.Ints {
		ix.rows[v] = append(ix.rows[v], int32(i))
	}
	t.idx[col] = ix
	return ix, nil
}

// Index returns the index on col, or nil.
func (t *Table) Index(col string) *Index {
	return t.idx[col]
}

// Rows returns the row ids holding value v (sorted ascending).
func (ix *Index) Rows(v int64) []int32 { return ix.rows[v] }

// NumKeys returns the number of distinct indexed keys.
func (ix *Index) NumKeys() int { return len(ix.rows) }

// FK is a declared foreign-key relationship between two table columns.
type FK struct {
	Table, Column       string
	RefTable, RefColumn string
}

// Catalog is a named set of tables; the unit a query executes against.
type Catalog struct {
	tables map[string]*Table
	order  []string
	fks    []FK
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// DeclareFK records a foreign-key relationship. Schema-aware components
// (join-edge derivation, workload generation) consult declared FKs before
// falling back to naming heuristics.
func (cat *Catalog) DeclareFK(table, column, refTable, refColumn string) {
	cat.fks = append(cat.fks, FK{table, column, refTable, refColumn})
}

// FKs returns the declared foreign keys in declaration order.
func (cat *Catalog) FKs() []FK {
	out := make([]FK, len(cat.fks))
	copy(out, cat.fks)
	return out
}

// Add registers a table, replacing any previous table of the same name.
func (cat *Catalog) Add(t *Table) {
	if _, ok := cat.tables[t.Name]; !ok {
		cat.order = append(cat.order, t.Name)
	}
	cat.tables[t.Name] = t
}

// Table returns the named table, or nil.
func (cat *Catalog) Table(name string) *Table { return cat.tables[name] }

// TableNames returns registered table names in insertion order.
func (cat *Catalog) TableNames() []string {
	out := make([]string, len(cat.order))
	copy(out, cat.order)
	return out
}

// TotalRows returns the sum of row counts over all tables.
func (cat *Catalog) TotalRows() int {
	n := 0
	for _, name := range cat.order {
		n += cat.tables[name].NumRows()
	}
	return n
}

// SortedDistinct returns the sorted distinct values of an Int/String column
// in the numeric domain. It is used by histogram builders and the
// auto-regressive estimators' domain binning.
func SortedDistinct(c *Column) []float64 {
	seen := make(map[float64]struct{})
	n := c.Len()
	for i := 0; i < n; i++ {
		seen[c.Float(i)] = struct{}{}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}
