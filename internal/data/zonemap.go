// Zone maps and cached column statistics.
//
// A zone map summarizes a column as per-block min/max values over
// fixed-size row blocks. Scans consult it before touching the block's
// data: a block whose value range provably cannot satisfy a predicate is
// skipped without reading a single row. The summaries — like the cached
// whole-column MinMax/DistinctCount — are built lazily on first use and
// invalidated by the Append* mutators, so repeated optimizer/statistics
// calls and every vectorized scan share one O(n) pass instead of
// rescanning the data each time.
//
// Concurrency: caches are published through atomic pointers. Concurrent
// readers may race to build the same cache; both compute the identical
// value (a pure function of the column contents) and the last store wins.
// Mutating a column concurrently with readers requires external
// synchronization, exactly as for the raw value slices.
package data

import "math"

// ZoneBlockSize is the number of rows summarized by one zone-map block.
// It matches the executor's default batch granularity: small enough that
// selective predicates on clustered columns skip most of a table, large
// enough that the per-block bookkeeping is negligible.
const ZoneBlockSize = 1024

// ZoneBlocks returns the number of zone-map blocks covering n rows.
func ZoneBlocks(n int) int {
	return (n + ZoneBlockSize - 1) / ZoneBlockSize
}

// ZoneMap holds per-block min/max summaries of one column. Int and
// dictionary-encoded String columns fill IntMin/IntMax (exact int64
// bounds); Float columns fill FltMin/FltMax over the block's comparable
// (non-NaN) values, with Empty marking blocks that have none.
type ZoneMap struct {
	NumBlocks int
	IntMin    []int64
	IntMax    []int64
	FltMin    []float64
	FltMax    []float64
	Empty     []bool
}

// minMaxCache is the memoized result of Column.MinMax.
type minMaxCache struct {
	lo, hi float64
	ok     bool
}

// Zones returns the column's zone map, building and caching it on first
// use. The returned map is immutable; Append* invalidates the cache.
func (c *Column) Zones() *ZoneMap {
	if zm := c.zones.Load(); zm != nil {
		return zm
	}
	zm := c.buildZones()
	c.zones.Store(zm)
	return zm
}

func (c *Column) buildZones() *ZoneMap {
	n := c.Len()
	nb := ZoneBlocks(n)
	zm := &ZoneMap{NumBlocks: nb}
	if c.Kind == Float {
		zm.FltMin = make([]float64, nb)
		zm.FltMax = make([]float64, nb)
		zm.Empty = make([]bool, nb)
		for b := 0; b < nb; b++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			seen := false
			end := (b + 1) * ZoneBlockSize
			if end > n {
				end = n
			}
			for _, v := range c.Flts[b*ZoneBlockSize : end] {
				if math.IsNaN(v) {
					continue
				}
				seen = true
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			zm.FltMin[b], zm.FltMax[b], zm.Empty[b] = lo, hi, !seen
		}
		return zm
	}
	zm.IntMin = make([]int64, nb)
	zm.IntMax = make([]int64, nb)
	for b := 0; b < nb; b++ {
		end := (b + 1) * ZoneBlockSize
		if end > n {
			end = n
		}
		blk := c.Ints[b*ZoneBlockSize : end]
		lo, hi := blk[0], blk[0]
		for _, v := range blk[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		zm.IntMin[b], zm.IntMax[b] = lo, hi
	}
	return zm
}

// invalidate drops every cached summary; called by the Append* mutators.
func (c *Column) invalidate() {
	c.zones.Store(nil)
	c.mm.Store(nil)
	c.distinct.Store(nil)
}
