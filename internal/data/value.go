// Package data provides the in-memory relational storage substrate: typed
// values, dictionary-encoded columns, tables, indexes and a catalog.
//
// The substrate stands in for the PostgreSQL host engine of the surveyed
// systems: it is small, deterministic, and exposes exactly what learned
// query optimization needs — typed column access, true cardinalities by
// execution, and cheap statistics collection.
package data

import (
	"fmt"
	"strconv"
)

// Kind enumerates the column types supported by the engine.
type Kind int

// Supported column kinds. String columns are dictionary-encoded to int64
// codes at load time; estimators therefore see a uniform numeric domain.
const (
	Int Kind = iota
	Float
	String
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "TEXT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed scalar. Exactly one of I or F is meaningful
// depending on K; String values are represented by their dictionary code in
// I together with the originating column's dictionary.
type Value struct {
	K Kind
	I int64
	F float64
}

// IntVal returns an Int Value.
func IntVal(v int64) Value { return Value{K: Int, I: v} }

// FloatVal returns a Float Value.
func FloatVal(v float64) Value { return Value{K: Float, F: v} }

// AsFloat converts the value to float64, the common numeric domain used by
// featurizers and histograms.
func (v Value) AsFloat() float64 {
	if v.K == Float {
		return v.F
	}
	return float64(v.I)
}

// Compare returns -1, 0 or +1 comparing v to w in the numeric domain.
func (v Value) Compare(w Value) int {
	a, b := v.AsFloat(), w.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the value for debugging and plan display.
func (v Value) String() string {
	if v.K == Float {
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	}
	return strconv.FormatInt(v.I, 10)
}

// Dict is an order-preserving string dictionary. Codes are assigned in
// insertion order; Lookup is O(1).
type Dict struct {
	codes map[string]int64
	strs  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]int64)}
}

// Code interns s and returns its code.
func (d *Dict) Code(s string) int64 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := int64(len(d.strs))
	d.codes[s] = c
	d.strs = append(d.strs, s)
	return c
}

// Lookup returns the code for s and whether it is present.
func (d *Dict) Lookup(s string) (int64, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Str returns the string for code c, or "" if out of range.
func (d *Dict) Str(c int64) string {
	if c < 0 || c >= int64(len(d.strs)) {
		return ""
	}
	return d.strs[c]
}

// Len reports the number of distinct strings interned.
func (d *Dict) Len() int { return len(d.strs) }
