// Package workload generates the synthetic SPJ query workloads the
// experiments train and evaluate on: random connected FK-walk queries
// with data-sampled literals, deep self-join chains for the join-order
// studies, and exact labeling via the executor.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"lqo/internal/data"
	"lqo/internal/exec"
	"lqo/internal/query"
)

// Options configures the random SPJ query generator.
type Options struct {
	Seed     int64
	Count    int
	MinJoins int     // minimum tables per query minus one (0 = single table allowed)
	MaxJoins int     // maximum join edges per query (default 4)
	MaxPreds int     // maximum filter predicates per query (default 4)
	EqProb   float64 // probability a predicate is equality (default 0.35)
}

func (o Options) withDefaults() Options {
	if o.Count == 0 {
		o.Count = 100
	}
	if o.MaxJoins == 0 {
		o.MaxJoins = 4
	}
	if o.MaxPreds == 0 {
		o.MaxPreds = 4
	}
	if o.EqProb == 0 {
		o.EqProb = 0.35
	}
	return o
}

// GenWorkload produces random SPJ queries over the catalog's schema graph:
// connected random walks over FK edges with literal values sampled from
// the data (so predicates are rarely empty). Queries are deterministic in
// the seed.
func GenWorkload(cat *data.Catalog, opts Options) []*query.Query {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	edges := query.DeriveSchemaEdges(cat)
	adj := map[string][]query.SchemaEdge{}
	for _, e := range edges {
		adj[e.T1] = append(adj[e.T1], e)
		adj[e.T2] = append(adj[e.T2], e)
	}
	tables := cat.TableNames()
	var out []*query.Query
	for len(out) < opts.Count {
		q := genOne(cat, adj, tables, rng, opts)
		if q != nil {
			out = append(out, q)
		}
	}
	return out
}

func genOne(cat *data.Catalog, adj map[string][]query.SchemaEdge, tables []string, rng *rand.Rand, opts Options) *query.Query {
	nJoins := opts.MinJoins
	if opts.MaxJoins > opts.MinJoins {
		nJoins += rng.Intn(opts.MaxJoins - opts.MinJoins + 1)
	}
	q := &query.Query{}
	start := tables[rng.Intn(len(tables))]
	q.Refs = append(q.Refs, query.TableRef{Alias: start, Table: start})
	used := map[string]bool{start: true}
	for j := 0; j < nJoins; j++ {
		// Collect candidate edges extending the current table set, in
		// deterministic order.
		var cands []query.SchemaEdge
		var members []string
		for t := range used {
			members = append(members, t)
		}
		sort.Strings(members)
		for _, t := range members {
			for _, e := range adj[t] {
				if used[e.T1] != used[e.T2] { // exactly one endpoint inside
					cands = append(cands, e)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		e := cands[rng.Intn(len(cands))]
		newT := e.T1
		if used[e.T1] {
			newT = e.T2
		}
		used[newT] = true
		q.Refs = append(q.Refs, query.TableRef{Alias: newT, Table: newT})
		q.Joins = append(q.Joins, query.Join{
			LeftAlias: e.T1, LeftCol: e.C1, RightAlias: e.T2, RightCol: e.C2,
		})
	}
	sort.Slice(q.Refs, func(i, k int) bool { return q.Refs[i].Alias < q.Refs[k].Alias })

	// Predicates on non-key columns of the chosen tables.
	nPreds := 1 + rng.Intn(opts.MaxPreds)
	type cand struct {
		alias string
		col   *data.Column
	}
	var cols []cand
	for _, r := range q.Refs {
		t := cat.Table(r.Table)
		for _, c := range t.Cols {
			if c.Name == "id" || t.Index(c.Name) != nil || c.Len() == 0 {
				continue
			}
			cols = append(cols, cand{r.Alias, c})
		}
	}
	if len(cols) == 0 {
		return nil
	}
	usedCols := map[string]bool{}
	for p := 0; p < nPreds && p < len(cols); p++ {
		c := cols[rng.Intn(len(cols))]
		key := c.alias + "." + c.col.Name
		if usedCols[key] {
			continue
		}
		usedCols[key] = true
		q.Preds = append(q.Preds, genPred(c.alias, c.col, rng, opts.EqProb))
	}
	if len(q.Preds) == 0 {
		return nil
	}
	return q
}

func genPred(alias string, c *data.Column, rng *rand.Rand, eqProb float64) query.Pred {
	sampleVal := func() data.Value { return c.Value(rng.Intn(c.Len())) }
	r := rng.Float64()
	switch {
	case r < eqProb:
		return query.Pred{Alias: alias, Column: c.Name, Op: query.Eq, Val: sampleVal()}
	case r < eqProb+0.35:
		a, b := sampleVal(), sampleVal()
		if a.Compare(b) > 0 {
			a, b = b, a
		}
		return query.Pred{Alias: alias, Column: c.Name, Op: query.Between, Val: a, Val2: b}
	case r < eqProb+0.5:
		return query.Pred{Alias: alias, Column: c.Name, Op: query.Le, Val: sampleVal()}
	default:
		return query.Pred{Alias: alias, Column: c.Name, Op: query.Ge, Val: sampleVal()}
	}
}

// Labeled is a workload query with its exact cardinality.
type Labeled struct {
	Q    *query.Query
	Card float64
}

// LabelWorkload executes every query to obtain exact cardinalities.
func LabelWorkload(cache *exec.CardCache, qs []*query.Query) ([]Labeled, error) {
	out := make([]Labeled, 0, len(qs))
	for _, q := range qs {
		c, err := cache.TrueCard(q)
		if err != nil {
			return nil, fmt.Errorf("workload: labeling %s: %w", q.SQL(), err)
		}
		out = append(out, Labeled{Q: q, Card: c})
	}
	return out, nil
}

// GenLabeled generates exactly opts.Count labeled queries, skipping any
// whose execution exceeds the executor's intermediate cap (star joins on
// heavy-hitter keys can produce results orders of magnitude larger than
// the database; such queries are outside every surveyed benchmark's
// envelope).
func GenLabeled(cat *data.Catalog, cache *exec.CardCache, opts Options) ([]Labeled, error) {
	opts = opts.withDefaults()
	var out []Labeled
	seed := opts.Seed
	for attempts := 0; len(out) < opts.Count; attempts++ {
		if attempts > 50 {
			return nil, fmt.Errorf("workload: could not label %d queries (got %d)", opts.Count, len(out))
		}
		batch := opts
		batch.Seed = seed
		batch.Count = opts.Count - len(out)
		for _, q := range GenWorkload(cat, batch) {
			c, err := cache.TrueCard(q)
			if err != nil {
				continue
			}
			out = append(out, Labeled{Q: q, Card: c})
		}
		seed += 1000003
	}
	return out, nil
}
