package workload

import (
	"math/rand"
	"testing"

	"lqo/internal/data"
	"lqo/internal/datagen"
	"lqo/internal/exec"
	"lqo/internal/query"
)

func TestGenWorkloadValidAndDeterministic(t *testing.T) {
	cat := datagen.StatsCEB(datagen.Config{Seed: 2, Scale: 0.05})
	qs1 := GenWorkload(cat, Options{Seed: 2, Count: 50, MaxJoins: 3, MaxPreds: 3})
	qs2 := GenWorkload(cat, Options{Seed: 2, Count: 50, MaxJoins: 3, MaxPreds: 3})
	if len(qs1) != 50 {
		t.Fatalf("count = %d", len(qs1))
	}
	for i, q := range qs1 {
		if err := q.Validate(cat); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if len(q.Preds) == 0 {
			t.Fatalf("query %d has no predicates", i)
		}
		if q.Key() != qs2[i].Key() {
			t.Fatalf("generation not deterministic at %d", i)
		}
		// Join count = tables - 1 (connected walks).
		if len(q.Joins) != len(q.Refs)-1 {
			t.Fatalf("query %d: %d joins for %d tables", i, len(q.Joins), len(q.Refs))
		}
	}
}

func TestGenWorkloadRespectsJoinBounds(t *testing.T) {
	cat := datagen.StatsCEB(datagen.Config{Seed: 3, Scale: 0.05})
	qs := GenWorkload(cat, Options{Seed: 3, Count: 40, MinJoins: 2, MaxJoins: 3, MaxPreds: 2})
	for _, q := range qs {
		if len(q.Joins) < 2 || len(q.Joins) > 3 {
			t.Fatalf("join count %d outside [2,3]: %s", len(q.Joins), q.SQL())
		}
	}
}

func TestGenWorkloadQueriesAreConnected(t *testing.T) {
	cat := datagen.JOBLite(datagen.Config{Seed: 5, Scale: 0.05})
	qs := GenWorkload(cat, Options{Seed: 5, Count: 30, MaxJoins: 4, MaxPreds: 2})
	for _, q := range qs {
		g := query.NewJoinGraph(q)
		if !g.Connected(query.SetOf(q.Aliases())) {
			t.Fatalf("disconnected query: %s", q.SQL())
		}
	}
}

func TestGenLabeled(t *testing.T) {
	cat := datagen.StatsCEB(datagen.Config{Seed: 7, Scale: 0.05})
	cache := exec.NewCardCache(exec.New(cat))
	labeled, err := GenLabeled(cat, cache, Options{Seed: 7, Count: 30, MaxJoins: 3, MaxPreds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(labeled) != 30 {
		t.Fatalf("labeled = %d", len(labeled))
	}
	for _, l := range labeled {
		if l.Card < 0 {
			t.Fatalf("negative card for %s", l.Q.SQL())
		}
		// Cross-check one in three against a fresh execution.
		truth, err := cache.TrueCard(l.Q)
		if err != nil {
			t.Fatal(err)
		}
		if truth != l.Card {
			t.Fatalf("label mismatch: %v vs %v", l.Card, truth)
		}
	}
}

func TestLabelWorkloadErrorsOnCapBlowup(t *testing.T) {
	cat := datagen.StatsCEB(datagen.Config{Seed: 9, Scale: 0.05})
	ex := exec.New(cat)
	ex.MaxIntermediate = 10 // absurdly small cap
	cache := exec.NewCardCache(ex)
	qs := GenWorkload(cat, Options{Seed: 9, Count: 5, MinJoins: 2, MaxJoins: 3, MaxPreds: 1})
	if _, err := LabelWorkload(cache, qs); err == nil {
		t.Skip("no query exceeded the tiny cap — acceptable")
	}
}

func TestGenDeepJoinQuery(t *testing.T) {
	cat := datagen.StatsCEB(datagen.Config{Seed: 11, Scale: 0.05})
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{3, 6, 10} {
		q, err := GenDeepJoinQuery(cat, n, rng, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Refs) != n {
			t.Fatalf("refs = %d, want %d", len(q.Refs), n)
		}
		if len(q.Joins) != n-1 {
			t.Fatalf("joins = %d, want %d", len(q.Joins), n-1)
		}
		if err := q.Validate(cat); err != nil {
			t.Fatalf("deep query invalid: %v", err)
		}
		// Aliases must be unique even when tables repeat.
		seen := map[string]bool{}
		for _, r := range q.Refs {
			if seen[r.Alias] {
				t.Fatalf("duplicate alias %s", r.Alias)
			}
			seen[r.Alias] = true
		}
		g := query.NewJoinGraph(q)
		if !g.Connected(query.SetOf(q.Aliases())) {
			t.Fatal("deep join graph disconnected")
		}
	}
}

func TestGenDeepJoinNoEdgesErrors(t *testing.T) {
	// A catalog with tables but no FK structure.
	empty := data.NewCatalog()
	c := &data.Column{Name: "v", Kind: data.Int}
	c.AppendInt(1)
	empty.Add(data.NewTable("lonely", c))
	rng := rand.New(rand.NewSource(1))
	if _, err := GenDeepJoinQuery(empty, 3, rng, 0.5); err == nil {
		t.Fatal("expected error without schema edges")
	}
}
