package workload

import (
	"fmt"
	"math/rand"

	"lqo/internal/data"
	"lqo/internal/query"
)

// GenDeepJoinQuery builds an n-table query by random-walking the schema's
// FK graph with *fresh aliases* at every step (self-joins allowed), which
// produces arbitrarily deep join graphs on small schemas — the workload
// shape of the join-order-search experiments (E4), where plan quality is
// compared by cost, not execution.
func GenDeepJoinQuery(cat *data.Catalog, nTables int, rng *rand.Rand, predsPer float64) (*query.Query, error) {
	edges := query.DeriveSchemaEdges(cat)
	if len(edges) == 0 {
		return nil, fmt.Errorf("bench: no schema edges")
	}
	adj := map[string][]query.SchemaEdge{}
	for _, e := range edges {
		adj[e.T1] = append(adj[e.T1], e)
		adj[e.T2] = append(adj[e.T2], e)
	}
	q := &query.Query{}
	counts := map[string]int{}
	newAlias := func(table string) string {
		counts[table]++
		if counts[table] == 1 {
			return table
		}
		return fmt.Sprintf("%s_%d", table, counts[table])
	}
	start := edges[rng.Intn(len(edges))].T1
	a0 := newAlias(start)
	q.Refs = append(q.Refs, query.TableRef{Alias: a0, Table: start})
	type bound struct {
		alias, table string
	}
	have := []bound{{a0, start}}
	for len(q.Refs) < nTables {
		// Pick a random existing alias and a random incident schema edge.
		src := have[rng.Intn(len(have))]
		es := adj[src.table]
		if len(es) == 0 {
			return nil, fmt.Errorf("bench: table %s has no edges", src.table)
		}
		e := es[rng.Intn(len(es))]
		var newTable, srcCol, newCol string
		if e.T1 == src.table {
			newTable, srcCol, newCol = e.T2, e.C1, e.C2
		} else {
			newTable, srcCol, newCol = e.T1, e.C2, e.C1
		}
		na := newAlias(newTable)
		q.Refs = append(q.Refs, query.TableRef{Alias: na, Table: newTable})
		q.Joins = append(q.Joins, query.Join{
			LeftAlias: src.alias, LeftCol: srcCol, RightAlias: na, RightCol: newCol,
		})
		have = append(have, bound{na, newTable})
	}
	// Sprinkle predicates on non-key columns.
	for _, b := range have {
		if rng.Float64() >= predsPer {
			continue
		}
		t := cat.Table(b.table)
		var cands []*data.Column
		for _, c := range t.Cols {
			if c.Name != "id" && t.Index(c.Name) == nil && c.Len() > 0 {
				cands = append(cands, c)
			}
		}
		if len(cands) == 0 {
			continue
		}
		col := cands[rng.Intn(len(cands))]
		q.Preds = append(q.Preds, genPred(b.alias, col, rng, 0.3))
	}
	return q, nil
}
