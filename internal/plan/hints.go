package plan

import (
	"sort"
	"strings"
)

// HintSet is a Bao-style steering knob set: it enables or disables physical
// operator classes for an entire optimization run. The zero value allows
// everything.
type HintSet struct {
	NoHashJoin   bool
	NoMergeJoin  bool
	NoNestedLoop bool
	NoIndexScan  bool
	NoSeqScan    bool // only honored when an index alternative exists
}

// AllowsJoin reports whether the hint set permits the join operator.
func (h HintSet) AllowsJoin(op Op) bool {
	switch op {
	case HashJoin:
		return !h.NoHashJoin
	case MergeJoin:
		return !h.NoMergeJoin
	case NestedLoopJoin:
		return !h.NoNestedLoop
	default:
		return false
	}
}

// AllowsScan reports whether the hint set permits the scan operator.
func (h HintSet) AllowsScan(op Op) bool {
	switch op {
	case SeqScan:
		return !h.NoSeqScan
	case IndexScan:
		return !h.NoIndexScan
	default:
		return false
	}
}

// Valid reports whether at least one join operator and one scan operator
// remain enabled.
func (h HintSet) Valid() bool {
	return (!h.NoHashJoin || !h.NoMergeJoin || !h.NoNestedLoop) &&
		(!h.NoSeqScan || !h.NoIndexScan)
}

// String lists the disabled operator classes, or "default".
func (h HintSet) String() string {
	var off []string
	if h.NoHashJoin {
		off = append(off, "hashjoin")
	}
	if h.NoMergeJoin {
		off = append(off, "mergejoin")
	}
	if h.NoNestedLoop {
		off = append(off, "nestloop")
	}
	if h.NoIndexScan {
		off = append(off, "indexscan")
	}
	if h.NoSeqScan {
		off = append(off, "seqscan")
	}
	if len(off) == 0 {
		return "default"
	}
	sort.Strings(off)
	return "no-" + strings.Join(off, ",no-")
}

// BaoHintSets is the canonical arm set used by the Bao-style optimizer:
// the default plus single-operator-class prohibitions, mirroring the 5-arm
// configuration the Bao paper found sufficient.
func BaoHintSets() []HintSet {
	return []HintSet{
		{},
		{NoHashJoin: true},
		{NoMergeJoin: true},
		{NoNestedLoop: true},
		{NoIndexScan: true},
		{NoHashJoin: true, NoMergeJoin: true},
		{NoNestedLoop: true, NoIndexScan: true},
	}
}
