// Default rewrite passes: predicate pushdown into scans, constant /
// always-false predicate folding, redundant-join-key dedup, and estimate
// re-annotation. Each pass is pure (clone-on-write) and idempotent, so
// the pipeline reaches fixpoint in one round on enumeration output —
// which also keeps post-pipeline plans fingerprint-identical to the
// enumerator's plans for well-formed queries.
package plan

import (
	"context"
	"math"

	"lqo/internal/data"
	"lqo/internal/query"
)

// DefaultPasses returns the standard pass list: pushdown, constfold,
// joinkey-dedup, reannotate, plus shard-scans when numShards >= 2 — the
// promql-engine DefaultOptimizers(numShards) idiom.
func DefaultPasses(numShards int) []RewritePass {
	passes := []RewritePass{
		PushdownPass{},
		ConstFoldPass{},
		JoinKeyDedupPass{},
		ReannotatePass{},
	}
	if numShards >= 2 {
		passes = append(passes, ShardScans(numShards))
	}
	return passes
}

// DefaultPipeline returns a PassPipeline over DefaultPasses(numShards).
func DefaultPipeline(numShards int) *PassPipeline {
	return &PassPipeline{Passes: DefaultPasses(numShards)}
}

// predsEqual compares two predicate lists element-wise by canonical key.
func predsEqual(a, b []query.Pred) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].KeyString() != b[i].KeyString() {
			return false
		}
	}
	return true
}

// scanLike reports whether the node carries a pushed-down predicate list
// that must mirror the query's per-alias predicates: scan leaves (shard
// subplan leaves included) and Merge nodes standing in for a scan.
func scanLike(n *Node) bool {
	return n.IsLeaf() || n.Op == Merge
}

// PushdownPass pushes the query's per-alias filter predicates into every
// scan (and Merge) node. Enumeration output already carries them, so the
// pass is a no-op there; externally supplied plans — Bao hint plans,
// learned join orders, hand-built trees — get their filters pushed down
// instead of silently scanning unfiltered.
type PushdownPass struct{}

// Name implements RewritePass.
func (PushdownPass) Name() string { return "pushdown" }

// Rewrite implements RewritePass.
func (PushdownPass) Rewrite(ctx context.Context, n *Node, pc *PassContext) (*Node, bool) {
	if ctx.Err() != nil || pc.Query == nil {
		return n, false
	}
	needs := false
	n.Walk(func(m *Node) {
		if scanLike(m) && !predsEqual(m.Preds, pc.Query.PredsOn(m.Alias)) {
			needs = true
		}
	})
	if !needs {
		return n, false
	}
	c := n.Clone()
	c.Walk(func(m *Node) {
		if scanLike(m) {
			m.Preds = append([]query.Pred(nil), pc.Query.PredsOn(m.Alias)...)
		}
	})
	return c, true
}

// ConstFoldPass folds constant predicate structure: exact duplicate
// conjuncts on a scan are dropped (first occurrence wins), and a node
// whose predicate set is provably unsatisfiable is annotated with
// EstCard 0 so the cost of everything above it reflects the empty
// result. Detection is conservative — only definite contradictions under
// the executor's matching semantics fold (see alwaysFalse).
type ConstFoldPass struct{}

// Name implements RewritePass.
func (ConstFoldPass) Name() string { return "constfold" }

// Rewrite implements RewritePass.
func (ConstFoldPass) Rewrite(ctx context.Context, n *Node, pc *PassContext) (*Node, bool) {
	if ctx.Err() != nil {
		return n, false
	}
	needs := false
	n.Walk(func(m *Node) {
		if !scanLike(m) {
			return
		}
		if len(dedupPreds(m.Preds)) != len(m.Preds) {
			needs = true
		}
		if alwaysFalse(m.Preds) && math.Float64bits(m.EstCard) != 0 {
			needs = true
		}
	})
	if !needs {
		return n, false
	}
	c := n.Clone()
	c.Walk(func(m *Node) {
		if !scanLike(m) {
			return
		}
		m.Preds = dedupPreds(m.Preds)
		if alwaysFalse(m.Preds) {
			m.EstCard = 0
		}
	})
	return c, true
}

// dedupPreds drops conjuncts whose canonical key already appeared,
// preserving order. Returns the input slice unchanged (no copy) when
// nothing is duplicated.
func dedupPreds(preds []query.Pred) []query.Pred {
	dup := false
	for i := 1; i < len(preds) && !dup; i++ {
		for j := 0; j < i; j++ {
			if preds[i].KeyString() == preds[j].KeyString() {
				dup = true
				break
			}
		}
	}
	if !dup {
		return preds
	}
	out := make([]query.Pred, 0, len(preds))
	for _, p := range preds {
		seen := false
		for _, kept := range out {
			if p.KeyString() == kept.KeyString() {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, p)
		}
	}
	return out
}

// JoinKeyDedupPass drops redundant equi-join conditions: a join node
// listing the same column pair twice charges (and checks) the duplicate
// key for nothing. The join graph never emits duplicates, so this fires
// only on externally supplied or hand-built plans.
type JoinKeyDedupPass struct{}

// Name implements RewritePass.
func (JoinKeyDedupPass) Name() string { return "joinkey-dedup" }

// Rewrite implements RewritePass.
func (JoinKeyDedupPass) Rewrite(ctx context.Context, n *Node, pc *PassContext) (*Node, bool) {
	if ctx.Err() != nil {
		return n, false
	}
	needs := false
	n.Walk(func(m *Node) {
		if m.Op.IsJoin() && len(dedupJoins(m.Cond)) != len(m.Cond) {
			needs = true
		}
	})
	if !needs {
		return n, false
	}
	c := n.Clone()
	c.Walk(func(m *Node) {
		if m.Op.IsJoin() {
			m.Cond = dedupJoins(m.Cond)
		}
	})
	return c, true
}

// dedupJoins drops join conditions whose canonical key already appeared,
// preserving order. Returns the input slice unchanged when nothing is
// duplicated.
func dedupJoins(conds []query.Join) []query.Join {
	dup := false
	for i := 1; i < len(conds) && !dup; i++ {
		for j := 0; j < i; j++ {
			if conds[i].KeyString() == conds[j].KeyString() {
				dup = true
				break
			}
		}
	}
	if !dup {
		return conds
	}
	out := make([]query.Join, 0, len(conds))
	for _, jn := range conds {
		seen := false
		for _, kept := range out {
			if jn.KeyString() == kept.KeyString() {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, jn)
		}
	}
	return out
}

// ReannotatePass refreshes every logical node's EstCard from the pass
// context's estimator — after structural passes changed the tree, the
// annotations must describe the tree that will actually run. Nodes whose
// sub-query predicates are provably unsatisfiable annotate 0 without
// consulting the estimator. Enumeration output planned by the same
// estimator re-derives identical values, so the pass is a no-op there.
type ReannotatePass struct{}

// Name implements RewritePass.
func (ReannotatePass) Name() string { return "reannotate" }

// Rewrite implements RewritePass.
func (ReannotatePass) Rewrite(ctx context.Context, n *Node, pc *PassContext) (*Node, bool) {
	if ctx.Err() != nil || pc.Query == nil || pc.Estimate == nil {
		return n, false
	}
	needs := false
	n.WalkLogical(func(m *Node) {
		if m.Op == Exchange {
			return
		}
		if math.Float64bits(reannotateCard(m, pc)) != math.Float64bits(m.EstCard) {
			needs = true
		}
	})
	if !needs {
		return n, false
	}
	c := n.Clone()
	c.WalkLogical(func(m *Node) {
		if m.Op == Exchange {
			return
		}
		m.EstCard = reannotateCard(m, pc)
	})
	return c, true
}

// reannotateCard computes the logical node's refreshed cardinality.
func reannotateCard(m *Node, pc *PassContext) float64 {
	sub := pc.Query.Subquery(m.AliasSet())
	if alwaysFalse(sub.Preds) {
		return 0
	}
	//lqolint:ignore cardclamp PassContext.Estimate is contractually pre-sanitized (the optimizer supplies its own sanitizer); re-clamping would turn a legitimate 0 estimate into 1 and diverge from enumeration-time annotations
	return pc.Estimate(sub)
}

// alwaysFalse reports whether the predicate conjunction is provably
// unsatisfiable. Detection is pairwise and deliberately conservative:
// only violations that hold under both the float and the exact-int64
// matching semantics count (float comparisons round monotonically, so a
// strict float violation implies a strict exact violation; boundary
// equalities are never folded). Unbound placeholder predicates disable
// folding for their column.
func alwaysFalse(preds []query.Pred) bool {
	for i := range preds {
		if !predBound(preds[i]) {
			continue
		}
		if preds[i].Op == query.Between && preds[i].Val.AsFloat() > preds[i].Val2.AsFloat() {
			return true
		}
		for j := 0; j < i; j++ {
			if !predBound(preds[j]) {
				continue
			}
			if preds[i].Alias != preds[j].Alias || preds[i].Column != preds[j].Column {
				continue
			}
			if pairUnsat(preds[i], preds[j]) {
				return true
			}
		}
	}
	return false
}

// predBound reports whether every value the predicate compares against
// is a literal (no unbound placeholders).
func predBound(p query.Pred) bool {
	if p.Param != 0 {
		return false
	}
	return p.Op != query.Between || p.Param2 == 0
}

// pairUnsat reports whether two same-column predicates are mutually
// unsatisfiable.
func pairUnsat(a, b query.Pred) bool {
	// Eq vs Ne on the same value: exact when both literals are exact
	// int64s (the executor compares exactly there), float otherwise.
	if eq, ne, ok := eqNePair(a, b); ok {
		if eq.Val.K != data.Float && ne.Val.K != data.Float {
			return eq.Val.I == ne.Val.I
		}
		return eq.Val.AsFloat() == ne.Val.AsFloat()
	}
	if a.Op == query.Ne || b.Op == query.Ne {
		return false
	}
	lo, hasLo := lowerBound(a)
	if l2, ok := lowerBound(b); ok && (!hasLo || l2 > lo) {
		lo, hasLo = l2, true
	}
	hi, hasHi := upperBound(a)
	if h2, ok := upperBound(b); ok && (!hasHi || h2 < hi) {
		hi, hasHi = h2, true
	}
	return hasLo && hasHi && lo > hi
}

// eqNePair extracts an (Eq, Ne) predicate pair in either order.
func eqNePair(a, b query.Pred) (eq, ne query.Pred, ok bool) {
	switch {
	case a.Op == query.Eq && b.Op == query.Ne:
		return a, b, true
	case a.Op == query.Ne && b.Op == query.Eq:
		return b, a, true
	}
	return a, b, false
}

// lowerBound returns the predicate's closed lower bound (strict
// operators are relaxed to closed, keeping detection conservative).
func lowerBound(p query.Pred) (float64, bool) {
	switch p.Op {
	case query.Eq:
		return p.Val.AsFloat(), true
	case query.Gt, query.Ge:
		return p.Val.AsFloat(), true
	case query.Between:
		return p.Val.AsFloat(), true
	}
	return 0, false
}

// upperBound returns the predicate's closed upper bound.
func upperBound(p query.Pred) (float64, bool) {
	switch p.Op {
	case query.Eq:
		return p.Val.AsFloat(), true
	case query.Lt, query.Le:
		return p.Val.AsFloat(), true
	case query.Between:
		return p.Val2.AsFloat(), true
	}
	return 0, false
}
