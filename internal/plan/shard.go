// ShardScans: the headline distribution pass. It splits eligible SeqScan
// leaves over hash partitions of the table into N shard subplans under a
// Merge/Exchange pair — the scatter half of scatter-gather. The gather
// half (internal/exec's merge operator) runs each Exchange subplan on an
// engine instance behind the ShardBackend interface and k-way-merges the
// per-shard streams back into global row order, keeping results and
// charged WorkUnits byte-identical to the unsharded reference.
package plan

import (
	"context"

	"lqo/internal/query"
)

// ShardScans returns the rewrite pass that scatters SeqScan leaves over
// numShards hash partitions. Counts below 2 yield a pass that never
// fires.
func ShardScans(numShards int) ShardScansPass {
	return ShardScansPass{NumShards: numShards}
}

// ShardScansPass rewrites every eligible SeqScan leaf into
//
//	Merge (alias, table, preds, annotations of the scan)
//	 ├─ Exchange [shard 0/N] → SeqScan clone
//	 ├─ ...
//	 └─ Exchange [shard N-1/N] → SeqScan clone
//
// IndexScan leaves are left alone: point lookups don't amortize the
// scatter, and the index side of the partition story belongs to a later
// pass. Already-sharded subtrees (Merge nodes) are skipped, which makes
// the pass idempotent.
type ShardScansPass struct {
	NumShards int
}

// Name implements RewritePass.
func (s ShardScansPass) Name() string { return "shard-scans" }

// Rewrite implements RewritePass.
func (s ShardScansPass) Rewrite(ctx context.Context, n *Node, pc *PassContext) (*Node, bool) {
	if ctx.Err() != nil || s.NumShards < 2 {
		return n, false
	}
	needs := false
	n.WalkLogical(func(m *Node) {
		if m.Op == SeqScan && m.IsLeaf() {
			needs = true
		}
	})
	if !needs {
		return n, false
	}
	c := n.Clone()
	root := s.shard(c)
	return root, true
}

// shard rewrites the (already cloned, caller-owned) subtree in place,
// returning the possibly-replaced root.
func (s ShardScansPass) shard(n *Node) *Node {
	if n == nil || n.Op == Merge {
		return n
	}
	if n.Op == SeqScan && n.IsLeaf() {
		m := &Node{
			Op:       Merge,
			Alias:    n.Alias,
			Table:    n.Table,
			Preds:    append([]query.Pred(nil), n.Preds...),
			EstCard:  n.EstCard,
			EstCost:  n.EstCost,
			TrueCard: n.TrueCard,
			Shards:   make([]*Node, s.NumShards),
		}
		for i := 0; i < s.NumShards; i++ {
			m.Shards[i] = &Node{
				Op:      Exchange,
				Shard:   i,
				ShardOf: s.NumShards,
				Left:    n.Clone(),
				EstCard: n.EstCard / float64(s.NumShards),
			}
		}
		return m
	}
	n.Left = s.shard(n.Left)
	n.Right = s.shard(n.Right)
	return n
}
