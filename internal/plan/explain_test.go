package plan

import (
	"strings"
	"testing"
	"time"
)

func TestRenderAnalyze(t *testing.T) {
	p := samplePlan()
	p.EstCard = 100
	p.Left.EstCard = 50

	actuals := map[*Node]Actuals{
		p:      {Rows: 90, Work: 123.4, Wall: 1500 * time.Microsecond, Batches: 2},
		p.Left: {Rows: 45, Work: 10, Wall: 20 * time.Microsecond, Batches: 1},
		// p.Right intentionally missing: renders "actual=-".
	}
	out := RenderAnalyze(p, func(n *Node) (Actuals, bool) {
		a, ok := actuals[n]
		return a, ok
	})

	for _, want := range []string{
		"HashJoin on a.id = b.a_id  (est=100 actual=90 work=123.4 time=1.5ms batches=2)",
		"SeqScan a filter: a.v > 3  (est=50 actual=45 work=10.0 time=20µs batches=1)",
		"IndexScan b  (est=0 actual=-)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Children indent under the join.
	if !strings.Contains(out, "\n  SeqScan") || !strings.Contains(out, "\n  IndexScan") {
		t.Fatalf("children not indented:\n%s", out)
	}
}
