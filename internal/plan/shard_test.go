package plan

import (
	"context"
	"strings"
	"testing"

	"lqo/internal/data"
	"lqo/internal/query"
)

func TestShardScansShape(t *testing.T) {
	root := samplePlan() // HashJoin(SeqScan a, IndexScan b)
	out, fired := ShardScans(4).Rewrite(context.Background(), root, &PassContext{})
	if !fired {
		t.Fatal("shard-scans should fire on a SeqScan leaf")
	}
	if root.Left.Op != SeqScan || len(root.Left.Shards) != 0 {
		t.Fatal("shard-scans mutated its input")
	}
	m := out.Left
	if m.Op != Merge || len(m.Shards) != 4 {
		t.Fatalf("left = %s with %d shards, want Merge with 4", m.Op, len(m.Shards))
	}
	if m.Alias != "a" || m.Table != "a" || len(m.Preds) != 1 {
		t.Fatalf("Merge node lost scan identity: %+v", m)
	}
	for i, s := range m.Shards {
		if s.Op != Exchange || s.Shard != i || s.ShardOf != 4 {
			t.Fatalf("shard %d = %s %d/%d", i, s.Op, s.Shard, s.ShardOf)
		}
		if s.Left == nil || s.Left.Op != SeqScan || !s.Left.IsLeaf() {
			t.Fatalf("shard %d does not wrap a SeqScan leaf", i)
		}
	}
	// IndexScan leaves are not sharded.
	if out.Right.Op != IndexScan || len(out.Right.Shards) != 0 {
		t.Fatalf("index scan should be untouched, got %s", out.Right.Op)
	}
	// Idempotent: a second run finds only Merge nodes and does not fire.
	if _, again := ShardScans(4).Rewrite(context.Background(), out, &PassContext{}); again {
		t.Fatal("shard-scans not idempotent")
	}
}

func TestShardScansBelowTwoIsNoop(t *testing.T) {
	for _, n := range []int{0, 1, -3} {
		root := samplePlan()
		out, fired := ShardScans(n).Rewrite(context.Background(), root, &PassContext{})
		if fired || out != root {
			t.Fatalf("ShardScans(%d) should be a no-op", n)
		}
	}
}

func TestShardedPlanKeysDistinct(t *testing.T) {
	base := samplePlan()
	mk := func(n int) *Node {
		out, _ := ShardScans(n).Rewrite(context.Background(), base, &PassContext{})
		return out
	}
	two, four := mk(2), mk(4)
	if base.Fingerprint() == two.Fingerprint() {
		t.Fatal("sharded and unsharded plans share a fingerprint")
	}
	if two.Fingerprint() == four.Fingerprint() {
		t.Fatal("different shard counts share a fingerprint")
	}
	if base.StructureKey() == two.StructureKey() {
		t.Fatal("sharded and unsharded plans share a structure key")
	}
	if two.StructureKey() == four.StructureKey() {
		t.Fatal("different shard counts share a structure key")
	}
}

func TestShardedWalkAndClone(t *testing.T) {
	out, _ := ShardScans(2).Rewrite(context.Background(), samplePlan(), &PassContext{})
	full, logical := 0, 0
	out.Walk(func(*Node) { full++ })
	out.WalkLogical(func(*Node) { logical++ })
	// Join + Merge(2 Exchange + 2 scan clones) + IndexScan = 7 full nodes;
	// the logical walk stops at the Merge: Join + Merge + IndexScan = 3.
	if full != 7 || logical != 3 {
		t.Fatalf("walk counts = %d full / %d logical, want 7 / 3", full, logical)
	}

	c := out.Clone()
	c.Left.Shards[1].Left.Preds[0].Val = data.IntVal(999)
	c.Left.Shards[0].Shard = 7
	if out.Left.Shards[1].Left.Preds[0].Val.I == 999 || out.Left.Shards[0].Shard == 7 {
		t.Fatal("Clone shares shard subplan state")
	}
	if c.Fingerprint() == out.Fingerprint() {
		t.Fatal("modified shard clone should fingerprint differently")
	}
}

func TestShardScansDividesEstimates(t *testing.T) {
	scan := NewScan(SeqScan, "a", "a", []query.Pred{{Alias: "a", Column: "v", Op: query.Gt, Val: data.IntVal(3)}})
	scan.EstCard = 100
	out, _ := ShardScans(4).Rewrite(context.Background(), scan, &PassContext{})
	if out.EstCard != 100 {
		t.Fatalf("Merge EstCard = %v, want the scan's 100", out.EstCard)
	}
	for i, s := range out.Shards {
		if s.EstCard != 25 {
			t.Fatalf("shard %d EstCard = %v, want 25", i, s.EstCard)
		}
	}
}

func TestShardedExplainRendering(t *testing.T) {
	out, _ := ShardScans(2).Rewrite(context.Background(), samplePlan(), &PassContext{})
	s := out.String()
	for _, frag := range []string{"Merge a [2 shards]", "Exchange"} {
		if !strings.Contains(s, frag) {
			t.Errorf("sharded rendering missing %q:\n%s", frag, s)
		}
	}
	dot := ToDOT(out)
	for _, frag := range []string{"2 shards", "shard 0/2", "shard 1/2"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("sharded DOT missing %q:\n%s", frag, dot)
		}
	}
}
