// Composable plan-rewrite pass framework: planning is an ordered list of
// pure rewrite passes over the physical plan, run to fixpoint with a
// per-pass trace — the promql-engine DefaultOptimizers(numShards) idiom.
// Join enumeration (internal/opt) produces the initial tree; every
// subsequent transformation (predicate pushdown, folding, sharding, and
// any future rewrite) is a ~100-line RewritePass instead of planner
// surgery.
package plan

import (
	"context"
	"fmt"

	"lqo/internal/query"
)

// PassContext carries the query-level state rewrite passes may consult.
// Passes must treat every field as read-only.
type PassContext struct {
	// Query is the logical query the plan computes. Passes that need it
	// (pushdown, re-annotation) are no-ops when it is nil.
	Query *query.Query

	// Estimate supplies sanitized cardinality estimates for sub-queries.
	// The contract mirrors the optimizer's own sanitizer: no NaN, no
	// negatives, capped at metrics.MaxCard. Passes use the values as-is;
	// re-clamping here would make re-annotation diverge from the
	// enumeration-time annotations. Nil disables estimate-dependent passes.
	Estimate func(*query.Query) float64

	// Shards is the scatter-gather fan-out the ShardScans pass targets;
	// values below 2 leave plans unsharded.
	Shards int
}

// RewritePass is one pure plan-to-plan transformation. Rewrite returns
// the (possibly new) root and whether anything changed. Purity contract:
// the input tree must never be mutated — a firing pass clones what it
// changes (clone-on-write), so callers can hold references to the input
// across the call. A pass must also be idempotent: running it twice on
// its own output must not fire again, or the pipeline cannot reach
// fixpoint.
type RewritePass interface {
	Name() string
	Rewrite(ctx context.Context, n *Node, pc *PassContext) (*Node, bool)
}

// PassTrace records one pass execution for plan provenance: which pass,
// in which fixpoint round, whether it fired, and the node-count delta —
// the evidence EXPLAIN renders so rewrites are debuggable from the shell.
type PassTrace struct {
	Pass        string
	Round       int
	Fired       bool
	NodesBefore int
	NodesAfter  int
}

// String renders one trace line, e.g. "shard-scans: fired (3 -> 9 nodes)".
func (t PassTrace) String() string {
	if !t.Fired {
		return fmt.Sprintf("%s: -", t.Pass)
	}
	if t.NodesBefore == t.NodesAfter {
		return fmt.Sprintf("%s: fired (%d nodes)", t.Pass, t.NodesAfter)
	}
	return fmt.Sprintf("%s: fired (%d -> %d nodes)", t.Pass, t.NodesBefore, t.NodesAfter)
}

// PassPipeline runs an ordered list of rewrite passes to fixpoint. The
// zero value is a valid empty pipeline (identity transform).
type PassPipeline struct {
	Passes []RewritePass
	// MaxRounds bounds the fixpoint iteration as a defense against a
	// non-idempotent pass pair oscillating forever. 0 means the default
	// of 8 rounds; the defaults converge in 2.
	MaxRounds int
}

func (pl *PassPipeline) maxRounds() int {
	if pl.MaxRounds > 0 {
		return pl.MaxRounds
	}
	return 8
}

// Run applies the pipeline's passes in order, repeating rounds until a
// full round fires no pass (fixpoint) or MaxRounds is hit. It returns
// the rewritten plan and the per-pass trace. The input tree is never
// mutated (every pass is clone-on-write); when nothing fires the input
// root is returned unchanged.
func (pl *PassPipeline) Run(ctx context.Context, root *Node, pc *PassContext) (*Node, []PassTrace, error) {
	if pc == nil {
		pc = &PassContext{}
	}
	var trace []PassTrace
	for round := 1; round <= pl.maxRounds(); round++ {
		fired := false
		for _, p := range pl.Passes {
			if err := ctx.Err(); err != nil {
				return nil, trace, err
			}
			before := countNodes(root)
			next, changed := p.Rewrite(ctx, root, pc)
			if next == nil {
				next, changed = root, false
			}
			trace = append(trace, PassTrace{
				Pass:        p.Name(),
				Round:       round,
				Fired:       changed,
				NodesBefore: before,
				NodesAfter:  countNodes(next),
			})
			if changed {
				fired = true
				root = next
			}
		}
		if !fired {
			return root, trace, nil
		}
	}
	return root, trace, nil
}

func countNodes(n *Node) int {
	k := 0
	n.Walk(func(*Node) { k++ })
	return k
}
