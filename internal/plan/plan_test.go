package plan

import (
	"strings"
	"testing"

	"lqo/internal/data"
	"lqo/internal/query"
)

func samplePlan() *Node {
	j := query.Join{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "a_id"}
	p := query.Pred{Alias: "a", Column: "v", Op: query.Gt, Val: data.IntVal(3)}
	left := NewScan(SeqScan, "a", "a", []query.Pred{p})
	right := NewScan(IndexScan, "b", "b", nil)
	return NewJoin(HashJoin, left, right, []query.Join{j})
}

func TestAliasesAndWalk(t *testing.T) {
	p := samplePlan()
	al := p.Aliases()
	if len(al) != 2 || al[0] != "a" || al[1] != "b" {
		t.Fatalf("Aliases = %v", al)
	}
	if p.NumJoins() != 1 {
		t.Fatalf("NumJoins = %d", p.NumJoins())
	}
	if len(p.Nodes()) != 3 {
		t.Fatalf("Nodes = %d", len(p.Nodes()))
	}
	if !p.Left.IsLeaf() || p.IsLeaf() {
		t.Fatal("leaf detection broken")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := samplePlan()
	c := p.Clone()
	c.Left.Preds[0].Column = "zzz"
	c.Op = MergeJoin
	if p.Left.Preds[0].Column != "v" || p.Op != HashJoin {
		t.Fatal("Clone shares state")
	}
	if c.Fingerprint() == p.Fingerprint() {
		t.Fatal("modified clone should differ")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	p1 := samplePlan()
	p2 := samplePlan()
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatal("identical plans should share a fingerprint")
	}
	// Operator change.
	p2.Op = MergeJoin
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatal("join operator not in fingerprint")
	}
	// Operand order matters (NL cost asymmetric).
	p3 := samplePlan()
	p3.Left, p3.Right = p3.Right, p3.Left
	if p1.Fingerprint() == p3.Fingerprint() {
		t.Fatal("operand order not in fingerprint")
	}
	// Predicate literal change.
	p4 := samplePlan()
	p4.Left.Preds[0].Val = data.IntVal(4)
	if p1.Fingerprint() == p4.Fingerprint() {
		t.Fatal("predicate literal not in fingerprint")
	}
}

func TestStructureKeyIgnoresLiterals(t *testing.T) {
	p1 := samplePlan()
	p2 := samplePlan()
	p2.Left.Preds[0].Val = data.IntVal(99)
	if p1.StructureKey() != p2.StructureKey() {
		t.Fatal("StructureKey should ignore literals")
	}
	p3 := samplePlan()
	p3.Op = NestedLoopJoin
	if p1.StructureKey() == p3.StructureKey() {
		t.Fatal("StructureKey should see operators")
	}
}

func TestJoinOrder(t *testing.T) {
	p := samplePlan()
	order := p.JoinOrder()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("JoinOrder = %v", order)
	}
}

func TestStringRendering(t *testing.T) {
	p := samplePlan()
	p.EstCard = 10
	s := p.String()
	for _, frag := range []string{"HashJoin", "SeqScan a", "IndexScan b", "a.v > 3"} {
		if !strings.Contains(s, frag) {
			t.Errorf("plan rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestHintSets(t *testing.T) {
	var h HintSet
	if !h.Valid() || h.String() != "default" {
		t.Fatal("zero hint set should be valid default")
	}
	h.NoHashJoin = true
	if h.AllowsJoin(HashJoin) || !h.AllowsJoin(MergeJoin) {
		t.Fatal("AllowsJoin wrong")
	}
	if !strings.Contains(h.String(), "hashjoin") {
		t.Fatalf("String = %s", h.String())
	}
	all := HintSet{NoHashJoin: true, NoMergeJoin: true, NoNestedLoop: true}
	if all.Valid() {
		t.Fatal("no joins left should be invalid")
	}
	scans := HintSet{NoSeqScan: true, NoIndexScan: true}
	if scans.Valid() {
		t.Fatal("no scans left should be invalid")
	}
	for _, hs := range BaoHintSets() {
		if !hs.Valid() {
			t.Fatalf("Bao hint set %s invalid", hs)
		}
	}
	if len(BaoHintSets()) < 5 {
		t.Fatal("Bao arm set too small")
	}
}

func TestSubqueryProjection(t *testing.T) {
	q := &query.Query{
		Refs: []query.TableRef{{Alias: "a", Table: "a"}, {Alias: "b", Table: "b"}},
		Joins: []query.Join{
			{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "a_id"},
		},
		Preds: []query.Pred{{Alias: "a", Column: "v", Op: query.Gt, Val: data.IntVal(3)}},
	}
	p := samplePlan()
	sub := p.Left.Subquery(q)
	if len(sub.Refs) != 1 || sub.Refs[0].Alias != "a" || len(sub.Preds) != 1 {
		t.Fatalf("scan subquery = %+v", sub)
	}
	whole := p.Subquery(q)
	if len(whole.Joins) != 1 {
		t.Fatalf("root subquery lost join")
	}
}

func TestToDOT(t *testing.T) {
	p := samplePlan()
	p.EstCard = 42
	dot := ToDOT(p)
	for _, frag := range []string{"digraph plan", "HashJoin", "SeqScan", "IndexScan", "est=42", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
	// Two edges for one join of two scans.
	if strings.Count(dot, "->") != 2 {
		t.Fatalf("edge count = %d", strings.Count(dot, "->"))
	}
}

// The pairs below collide under the pre-canonical fingerprint format
// (";"-joined predicate strings, ","-joined join conditions, raw alias
// bytes) and must stay distinct under the KeyBuilder encoding — the
// plan-side half of the delimiter-injection regression suite.

func TestFingerprintPredDelimiterInjection(t *testing.T) {
	// Old leaf format: Op "(" alias {";" pred.String()} ")". A column
	// name containing " > 1;a.w" spliced one predicate into two.
	p1 := NewScan(SeqScan, "a", "t", []query.Pred{
		{Alias: "a", Column: "v > 1;a.w", Op: query.Gt, Val: data.IntVal(2)},
	})
	p2 := NewScan(SeqScan, "a", "t", []query.Pred{
		{Alias: "a", Column: "v", Op: query.Gt, Val: data.IntVal(1)},
		{Alias: "a", Column: "w", Op: query.Gt, Val: data.IntVal(2)},
	})
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatalf("pred delimiter injection collides: %q", p1.Fingerprint())
	}
}

func TestFingerprintCondDelimiterInjection(t *testing.T) {
	l, r := NewScan(SeqScan, "a", "t", nil), NewScan(SeqScan, "b", "u", nil)
	p1 := NewJoin(HashJoin, l.Clone(), r.Clone(), []query.Join{
		{LeftAlias: "a", LeftCol: "x = b.y,a.z", RightAlias: "b", RightCol: "w"},
	})
	p2 := NewJoin(HashJoin, l.Clone(), r.Clone(), []query.Join{
		{LeftAlias: "a", LeftCol: "x", RightAlias: "b", RightCol: "y"},
		{LeftAlias: "a", LeftCol: "z", RightAlias: "b", RightCol: "w"},
	})
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatalf("join condition delimiter injection collides: %q", p1.Fingerprint())
	}
}

func TestFingerprintNumericCanonicalization(t *testing.T) {
	mk := func(v data.Value) *Node {
		return NewScan(SeqScan, "a", "t", []query.Pred{{Alias: "a", Column: "v", Op: query.Gt, Val: v}})
	}
	if mk(data.IntVal(1000000)).Fingerprint() != mk(data.FloatVal(1e6)).Fingerprint() {
		t.Fatal("semantically identical literals fingerprint differently")
	}
	if mk(data.IntVal(1)).Fingerprint() == mk(data.IntVal(2)).Fingerprint() {
		t.Fatal("distinct literals collide")
	}
}

func TestFingerprintIncludesTable(t *testing.T) {
	// Same alias bound to different base tables must not collide: a
	// serving-layer plan cache would otherwise hand table t's plan to a
	// query over table u.
	p1 := NewScan(SeqScan, "a", "t", nil)
	p2 := NewScan(SeqScan, "a", "u", nil)
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatal("fingerprint ignores the base table")
	}
}

func TestStructureKeyDelimiterInjection(t *testing.T) {
	// Old structure key wrote raw alias bytes: alias "a),SeqScan(b"
	// spliced a fake sibling into the tree rendering.
	deep := NewJoin(HashJoin, NewScan(SeqScan, "a),SeqScan(b", "t", nil), NewScan(SeqScan, "c", "u", nil), nil)
	if deep.StructureKey() == NewJoin(HashJoin,
		NewJoin(HashJoin, NewScan(SeqScan, "a", "t", nil), NewScan(SeqScan, "b", "t", nil), nil),
		NewScan(SeqScan, "c", "u", nil), nil).StructureKey() {
		t.Fatal("structure key delimiter injection collides")
	}
}
