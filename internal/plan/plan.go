// Package plan defines physical plan trees — the artifact every optimizer
// in the workbench produces and every learned cost model consumes — plus
// hint sets (Bao-style steering knobs) and canonical plan hashing.
package plan

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lqo/internal/query"
)

// Op is a physical operator kind.
type Op int

// Physical operators. Scans sit at leaves; joins are binary inner nodes.
// Merge/Exchange are the scatter-gather pair introduced by the ShardScans
// rewrite pass: a Merge node gathers N Exchange children (held in
// Node.Shards), each of which ships a shard-local subplan to a
// ShardBackend engine instance.
const (
	SeqScan Op = iota
	IndexScan
	NestedLoopJoin
	HashJoin
	MergeJoin
	Merge
	Exchange
)

// String returns the display name of the operator.
func (op Op) String() string {
	switch op {
	case SeqScan:
		return "SeqScan"
	case IndexScan:
		return "IndexScan"
	case NestedLoopJoin:
		return "NestedLoopJoin"
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case Merge:
		return "Merge"
	case Exchange:
		return "Exchange"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// IsJoin reports whether the operator is a join.
func (op Op) IsJoin() bool {
	return op == NestedLoopJoin || op == HashJoin || op == MergeJoin
}

// Node is a physical plan node. Scan leaves carry the alias, base table and
// pushed-down predicates; join nodes carry the equi-join conditions applied
// at that level and two children.
//
// EstCard/EstCost are annotations filled by whichever cardinality estimator
// and cost model optimized the plan; TrueCard is filled by execution.
type Node struct {
	Op    Op
	Alias string       // scans and Merge nodes
	Table string       // scans and Merge nodes: base table name
	Preds []query.Pred // scans (and Merge): pushed-down filters
	Cond  []query.Join // joins: equi-join conditions at this node
	Left  *Node
	Right *Node

	// Shards holds a Merge node's n-ary children: one Exchange per hash
	// partition of the underlying table. Empty on every other operator.
	Shards []*Node
	// Shard/ShardOf identify an Exchange node's partition: the node's
	// subplan (Left) covers partition Shard of ShardOf. Zero elsewhere.
	Shard   int
	ShardOf int

	EstCard  float64
	EstCost  float64
	TrueCard float64
}

// NewScan returns a scan leaf over alias (bound to table) with pushed-down
// predicates.
func NewScan(op Op, alias, table string, preds []query.Pred) *Node {
	return &Node{Op: op, Alias: alias, Table: table, Preds: preds}
}

// NewJoin returns a join node combining left and right under cond.
func NewJoin(op Op, left, right *Node, cond []query.Join) *Node {
	return &Node{Op: op, Left: left, Right: right, Cond: cond}
}

// IsLeaf reports whether the node is a scan.
func (n *Node) IsLeaf() bool {
	return n.Left == nil && n.Right == nil && len(n.Shards) == 0
}

// Aliases returns the sorted distinct aliases covered by the subtree.
// Shard subplans replicate their Merge node's alias, so duplicates are
// collapsed.
func (n *Node) Aliases() []string {
	var out []string
	n.Walk(func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m.Alias)
		}
	})
	sort.Strings(out)
	dedup := out[:0]
	for i, a := range out {
		if i == 0 || a != out[i-1] {
			dedup = append(dedup, a)
		}
	}
	return dedup
}

// AliasSet returns the subtree's aliases as a set.
func (n *Node) AliasSet() map[string]bool {
	return query.SetOf(n.Aliases())
}

// Walk visits the subtree pre-order, descending into a Merge node's
// shard children after Left/Right. Use WalkLogical to visit the logical
// tree only (one node per Merge, shard internals skipped).
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	n.Left.Walk(fn)
	n.Right.Walk(fn)
	for _, s := range n.Shards {
		s.Walk(fn)
	}
}

// WalkLogical visits the logical plan pre-order: like Walk, but a Merge
// node is visited as a single (scan-like) node and its Exchange/shard
// internals are skipped. Feedback harvesting and estimate snapshots use
// this view so per-shard cardinalities never masquerade as whole-scan
// truths.
func (n *Node) WalkLogical(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	if n.Op == Merge {
		return
	}
	n.Left.WalkLogical(fn)
	n.Right.WalkLogical(fn)
}

// Nodes returns all nodes of the subtree in pre-order.
func (n *Node) Nodes() []*Node {
	var out []*Node
	n.Walk(func(m *Node) { out = append(out, m) })
	return out
}

// NumJoins returns the number of join nodes in the subtree.
func (n *Node) NumJoins() int {
	k := 0
	n.Walk(func(m *Node) {
		if m.Op.IsJoin() {
			k++
		}
	})
	return k
}

// Clone deep-copies the subtree, preserving annotations.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Preds = append([]query.Pred(nil), n.Preds...)
	c.Cond = append([]query.Join(nil), n.Cond...)
	c.Left = n.Left.Clone()
	c.Right = n.Right.Clone()
	if n.Shards != nil {
		c.Shards = make([]*Node, len(n.Shards))
		for i, s := range n.Shards {
			c.Shards[i] = s.Clone()
		}
	}
	return &c
}

// Fingerprint returns a canonical string for the physical plan: operator
// tree shape with scan targets and join conditions. Predicate values are
// included so that plans for different queries never collide. Join-operand
// order is preserved (NL join cost is asymmetric). The encoding shares
// query.KeyBuilder with Query.Key: aliases, tables, columns and literals
// are length-prefixed, so delimiter bytes inside them cannot make two
// distinct plans render the same fingerprint (the old ";"/","-joined
// format could collide, which becomes cache poisoning the moment a plan
// cache keys on it).
func (n *Node) Fingerprint() string {
	var k query.KeyBuilder
	n.fingerprint(&k)
	return k.String()
}

func (n *Node) fingerprint(k *query.KeyBuilder) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		k.Raw(n.Op.String()).Raw("(").Atom(n.Alias).Raw(":").Atom(n.Table)
		for _, p := range n.Preds {
			k.Append(p.KeyString())
		}
		k.Raw(")")
		return
	}
	switch n.Op {
	case Merge:
		k.Raw(n.Op.String()).Raw("(").Atom(n.Alias).Raw(":").Atom(n.Table)
		for _, p := range n.Preds {
			k.Append(p.KeyString())
		}
		k.Raw(")[")
		for _, s := range n.Shards {
			s.fingerprint(k)
		}
		k.Raw("]")
		return
	case Exchange:
		k.Raw(n.Op.String()).Raw("@").Atom(strconv.Itoa(n.Shard)).Raw("/").Atom(strconv.Itoa(n.ShardOf)).Raw("(")
		n.Left.fingerprint(k)
		k.Raw(")")
		return
	}
	k.Raw(n.Op.String()).Raw("[")
	for _, j := range n.Cond {
		k.Append(j.KeyString())
	}
	k.Raw("](")
	n.Left.fingerprint(k)
	k.Raw(",")
	n.Right.fingerprint(k)
	k.Raw(")")
}

// StructureKey is Fingerprint without predicate literals: it identifies the
// join-order + operator shape. Eraser's coarse filter groups plans by it.
func (n *Node) StructureKey() string {
	var k query.KeyBuilder
	n.structureKey(&k)
	return k.String()
}

func (n *Node) structureKey(k *query.KeyBuilder) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		k.Raw(n.Op.String()).Raw("(").Atom(n.Alias).Raw(")")
		return
	}
	switch n.Op {
	case Merge:
		// Shard count (not per-shard subtrees) is the structural signal: a
		// 2-way and a 4-way merge of the same scan are different shapes.
		k.Raw(n.Op.String()).Raw("@").Atom(strconv.Itoa(len(n.Shards))).Raw("(").Atom(n.Alias).Raw(")")
		return
	case Exchange:
		k.Raw(n.Op.String()).Raw("(")
		n.Left.structureKey(k)
		k.Raw(")")
		return
	}
	k.Raw(n.Op.String()).Raw("(")
	n.Left.structureKey(k)
	k.Raw(",")
	n.Right.structureKey(k)
	k.Raw(")")
}

// String renders an indented plan tree with annotations.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	if n == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	switch {
	case n.IsLeaf(), n.Op == Merge:
		fmt.Fprintf(b, "%s %s", n.Op, n.Alias)
		if n.Table != n.Alias && n.Table != "" {
			fmt.Fprintf(b, " (%s)", n.Table)
		}
		if n.Op == Merge {
			fmt.Fprintf(b, " [%d shards]", len(n.Shards))
		}
		if len(n.Preds) > 0 {
			strs := make([]string, len(n.Preds))
			for i, p := range n.Preds {
				strs[i] = p.String()
			}
			fmt.Fprintf(b, " filter: %s", strings.Join(strs, " AND "))
		}
	case n.Op == Exchange:
		fmt.Fprintf(b, "%s [shard %d/%d]", n.Op, n.Shard, n.ShardOf)
	default:
		strs := make([]string, len(n.Cond))
		for i, j := range n.Cond {
			strs[i] = j.String()
		}
		fmt.Fprintf(b, "%s on %s", n.Op, strings.Join(strs, " AND "))
	}
	if n.EstCard > 0 || n.TrueCard > 0 {
		fmt.Fprintf(b, "  [est=%.0f true=%.0f cost=%.1f]", n.EstCard, n.TrueCard, n.EstCost)
	}
	b.WriteString("\n")
	n.Left.render(b, depth+1)
	n.Right.render(b, depth+1)
	for _, s := range n.Shards {
		s.render(b, depth+1)
	}
}

// Subquery reconstructs the logical sub-query computed by the subtree of q.
func (n *Node) Subquery(q *query.Query) *query.Query {
	return q.Subquery(n.AliasSet())
}

// JoinOrder returns the leaf aliases in left-to-right plan order — the
// linearized join order, used as RL episode output.
func (n *Node) JoinOrder() []string {
	var out []string
	var rec func(m *Node)
	rec = func(m *Node) {
		if m == nil {
			return
		}
		if m.IsLeaf() || m.Op == Merge {
			// A Merge node stands in for the scan it sharded: one leaf.
			out = append(out, m.Alias)
			return
		}
		rec(m.Left)
		rec(m.Right)
	}
	rec(n)
	return out
}
