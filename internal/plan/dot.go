package plan

import (
	"fmt"
	"strings"
)

// ToDOT renders the plan as a Graphviz digraph: one box per operator with
// its estimated/true cardinalities, edges child → parent. Useful for
// papers, debugging and the shell's EXPLAIN output.
func ToDOT(root *Node) string {
	var b strings.Builder
	b.WriteString("digraph plan {\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	id := 0
	var rec func(n *Node) int
	rec = func(n *Node) int {
		me := id
		id++
		label := n.Op.String()
		if n.IsLeaf() || n.Op == Merge {
			label += "\\n" + n.Alias
			if n.Op == Merge {
				label += fmt.Sprintf(" [%d shards]", len(n.Shards))
			}
			if len(n.Preds) > 0 {
				parts := make([]string, len(n.Preds))
				for i, p := range n.Preds {
					parts[i] = p.String()
				}
				label += "\\n" + escapeDOT(strings.Join(parts, " AND "))
			}
		} else if n.Op == Exchange {
			label += fmt.Sprintf("\\nshard %d/%d", n.Shard, n.ShardOf)
		} else {
			parts := make([]string, len(n.Cond))
			for i, j := range n.Cond {
				parts[i] = j.String()
			}
			label += "\\n" + escapeDOT(strings.Join(parts, " AND "))
		}
		label += fmt.Sprintf("\\nest=%.0f true=%.0f", n.EstCard, n.TrueCard)
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", me, label)
		if n.Left != nil {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", rec(n.Left), me)
		}
		if n.Right != nil {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", rec(n.Right), me)
		}
		for _, s := range n.Shards {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", rec(s), me)
		}
		return me
	}
	rec(root)
	b.WriteString("}\n")
	return b.String()
}

func escapeDOT(s string) string {
	return strings.NewReplacer("\"", "\\\"", "\n", "\\n").Replace(s)
}
