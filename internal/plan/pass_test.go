package plan

import (
	"context"
	"math"
	"strings"
	"testing"

	"lqo/internal/data"
	"lqo/internal/query"
)

// passQuery returns the two-table query samplePlan computes, with a
// predicate on a.v — the logical source of truth the passes sync plans to.
func passQuery() *query.Query {
	return &query.Query{
		Refs: []query.TableRef{{Alias: "a", Table: "a"}, {Alias: "b", Table: "b"}},
		Joins: []query.Join{
			{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "a_id"},
		},
		Preds: []query.Pred{{Alias: "a", Column: "v", Op: query.Gt, Val: data.IntVal(3)}},
	}
}

// snapshot captures everything a pass could corrupt in an input tree:
// structure + literals (fingerprint), annotations, and the identity of
// every node. Comparing snapshots before and after a pipeline run is the
// purity check — clone-on-write passes must leave all of it untouched.
type treeSnapshot struct {
	fingerprint string
	rendered    string
	nodes       []*Node
	estCards    []float64
	trueCards   []float64
	preds       []int
}

func snapshotTree(n *Node) treeSnapshot {
	s := treeSnapshot{fingerprint: n.Fingerprint(), rendered: n.String()}
	n.Walk(func(m *Node) {
		s.nodes = append(s.nodes, m)
		s.estCards = append(s.estCards, m.EstCard)
		s.trueCards = append(s.trueCards, m.TrueCard)
		s.preds = append(s.preds, len(m.Preds))
	})
	return s
}

func (s treeSnapshot) check(t *testing.T, n *Node) {
	t.Helper()
	if n.Fingerprint() != s.fingerprint {
		t.Fatalf("input tree fingerprint mutated:\nbefore %s\nafter  %s", s.fingerprint, n.Fingerprint())
	}
	if n.String() != s.rendered {
		t.Fatalf("input tree rendering mutated:\nbefore:\n%s\nafter:\n%s", s.rendered, n.String())
	}
	i := 0
	n.Walk(func(m *Node) {
		if i >= len(s.nodes) || s.nodes[i] != m {
			t.Fatalf("input tree pointer graph changed at node %d", i)
		}
		if math.Float64bits(m.EstCard) != math.Float64bits(s.estCards[i]) ||
			math.Float64bits(m.TrueCard) != math.Float64bits(s.trueCards[i]) ||
			len(m.Preds) != s.preds[i] {
			t.Fatalf("input tree annotations mutated at node %d", i)
		}
		i++
	})
	if i != len(s.nodes) {
		t.Fatalf("input tree node count changed: %d -> %d", len(s.nodes), i)
	}
}

func TestPipelinePurityAndFixpoint(t *testing.T) {
	q := passQuery()
	// Strip the pushed predicate so pushdown must fire.
	root := NewJoin(HashJoin,
		NewScan(SeqScan, "a", "a", nil),
		NewScan(SeqScan, "b", "b", nil),
		q.Joins)
	before := snapshotTree(root)

	pl := DefaultPipeline(2)
	out, trace, err := pl.Run(context.Background(), root, &PassContext{Query: q, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	before.check(t, root) // input tree untouched even though passes fired
	if out == root {
		t.Fatal("firing pipeline returned the input root")
	}

	fired := map[string]bool{}
	lastRound := 0
	for _, tr := range trace {
		if tr.Fired {
			fired[tr.Pass] = true
		}
		lastRound = tr.Round
	}
	if !fired["pushdown"] || !fired["shard-scans"] {
		t.Fatalf("expected pushdown and shard-scans to fire, trace: %v", trace)
	}
	if lastRound < 2 {
		t.Fatalf("fixpoint needs a clean confirming round, trace ended at round %d", lastRound)
	}
	// The final round must be clean — that is what fixpoint means.
	for _, tr := range trace {
		if tr.Round == lastRound && tr.Fired {
			t.Fatalf("last round still fired: %v", tr)
		}
	}

	// Idempotency: re-running the pipeline on its own output is a no-op
	// and returns the same root.
	out2, trace2, err := pl.Run(context.Background(), out, &PassContext{Query: q, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out {
		t.Fatal("pipeline on fixpoint output returned a new tree")
	}
	for _, tr := range trace2 {
		if tr.Fired {
			t.Fatalf("pass fired on fixpoint output: %v", tr)
		}
	}
}

func TestPipelineEmptyAndNilContext(t *testing.T) {
	root := samplePlan()
	var pl PassPipeline // zero value: identity transform
	out, trace, err := pl.Run(context.Background(), root, nil)
	if err != nil || out != root || len(trace) != 0 {
		t.Fatalf("empty pipeline: out=%p trace=%v err=%v", out, trace, err)
	}
}

func TestPipelineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := DefaultPipeline(0).Run(ctx, samplePlan(), &PassContext{Query: passQuery()})
	if err == nil {
		t.Fatal("cancelled pipeline should report the context error")
	}
}

func TestPushdownPassSyncsScans(t *testing.T) {
	q := passQuery()
	bare := NewJoin(HashJoin,
		NewScan(SeqScan, "a", "a", nil),
		NewScan(SeqScan, "b", "b", nil),
		q.Joins)
	out, fired := PushdownPass{}.Rewrite(context.Background(), bare, &PassContext{Query: q})
	if !fired {
		t.Fatal("pushdown should fire on a plan missing its filters")
	}
	if len(out.Left.Preds) != 1 || out.Left.Preds[0].Column != "v" {
		t.Fatalf("pushdown left scan preds = %v", out.Left.Preds)
	}
	if len(bare.Left.Preds) != 0 {
		t.Fatal("pushdown mutated its input")
	}
	if _, again := (PushdownPass{}).Rewrite(context.Background(), out, &PassContext{Query: q}); again {
		t.Fatal("pushdown not idempotent")
	}
}

func TestConstFoldDedupAndContradiction(t *testing.T) {
	p := query.Pred{Alias: "a", Column: "v", Op: query.Gt, Val: data.IntVal(3)}
	dup := NewScan(SeqScan, "a", "a", []query.Pred{p, p})
	out, fired := ConstFoldPass{}.Rewrite(context.Background(), dup, &PassContext{})
	if !fired || len(out.Preds) != 1 {
		t.Fatalf("duplicate conjunct not folded: fired=%v preds=%v", fired, out.Preds)
	}
	if len(dup.Preds) != 2 {
		t.Fatal("constfold mutated its input")
	}

	contra := NewScan(SeqScan, "a", "a", []query.Pred{
		{Alias: "a", Column: "v", Op: query.Gt, Val: data.IntVal(10)},
		{Alias: "a", Column: "v", Op: query.Lt, Val: data.IntVal(5)},
	})
	contra.EstCard = 100
	out, fired = ConstFoldPass{}.Rewrite(context.Background(), contra, &PassContext{})
	if !fired || out.EstCard != 0 {
		t.Fatalf("contradiction not annotated: fired=%v est=%v", fired, out.EstCard)
	}

	// Boundary equality (v >= 5 and v <= 5) is satisfiable — must not fold.
	edge := NewScan(SeqScan, "a", "a", []query.Pred{
		{Alias: "a", Column: "v", Op: query.Ge, Val: data.IntVal(5)},
		{Alias: "a", Column: "v", Op: query.Le, Val: data.IntVal(5)},
	})
	if _, fired := (ConstFoldPass{}).Rewrite(context.Background(), edge, &PassContext{}); fired {
		t.Fatal("satisfiable boundary folded")
	}

	// Unbound placeholders disable folding for their predicate.
	param := NewScan(SeqScan, "a", "a", []query.Pred{
		{Alias: "a", Column: "v", Op: query.Gt, Val: data.IntVal(10), Param: 1},
		{Alias: "a", Column: "v", Op: query.Lt, Val: data.IntVal(5)},
	})
	if _, fired := (ConstFoldPass{}).Rewrite(context.Background(), param, &PassContext{}); fired {
		t.Fatal("unbound placeholder predicate folded")
	}

	// Eq vs Ne on the same literal is a definite contradiction.
	eqne := NewScan(SeqScan, "a", "a", []query.Pred{
		{Alias: "a", Column: "v", Op: query.Eq, Val: data.IntVal(7)},
		{Alias: "a", Column: "v", Op: query.Ne, Val: data.IntVal(7)},
	})
	eqne.EstCard = 3
	out, fired = ConstFoldPass{}.Rewrite(context.Background(), eqne, &PassContext{})
	if !fired || out.EstCard != 0 {
		t.Fatalf("Eq/Ne contradiction not folded: fired=%v est=%v", fired, out.EstCard)
	}
}

func TestJoinKeyDedupPass(t *testing.T) {
	j := query.Join{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "a_id"}
	p := NewJoin(HashJoin,
		NewScan(SeqScan, "a", "a", nil),
		NewScan(SeqScan, "b", "b", nil),
		[]query.Join{j, j})
	out, fired := JoinKeyDedupPass{}.Rewrite(context.Background(), p, &PassContext{})
	if !fired || len(out.Cond) != 1 {
		t.Fatalf("duplicate join key not deduped: fired=%v cond=%v", fired, out.Cond)
	}
	if len(p.Cond) != 2 {
		t.Fatal("joinkey-dedup mutated its input")
	}
	if _, again := (JoinKeyDedupPass{}).Rewrite(context.Background(), out, &PassContext{}); again {
		t.Fatal("joinkey-dedup not idempotent")
	}
}

func TestReannotatePassRefreshesEstimates(t *testing.T) {
	q := passQuery()
	root := samplePlan()
	est := func(sub *query.Query) float64 { return float64(10 * len(sub.Refs)) }
	out, fired := ReannotatePass{}.Rewrite(context.Background(), root, &PassContext{Query: q, Estimate: est})
	if !fired {
		t.Fatal("reannotate should fire on unannotated plan")
	}
	if out.EstCard != 20 || out.Left.EstCard != 10 {
		t.Fatalf("reannotated cards = %v / %v", out.EstCard, out.Left.EstCard)
	}
	if root.EstCard != 0 {
		t.Fatal("reannotate mutated its input")
	}
	if _, again := (ReannotatePass{}).Rewrite(context.Background(), out, &PassContext{Query: q, Estimate: est}); again {
		t.Fatal("reannotate not idempotent")
	}
	// Nil estimator: pass is a declared no-op.
	if _, fired := (ReannotatePass{}).Rewrite(context.Background(), root, &PassContext{Query: q}); fired {
		t.Fatal("reannotate fired without an estimator")
	}
}

func TestRenderTrace(t *testing.T) {
	if RenderTrace(nil) != "" {
		t.Fatal("empty trace should render empty")
	}
	trace := []PassTrace{
		{Pass: "pushdown", Round: 1, Fired: true, NodesBefore: 3, NodesAfter: 3},
		{Pass: "shard-scans", Round: 1, Fired: true, NodesBefore: 3, NodesAfter: 9},
		{Pass: "pushdown", Round: 2},
	}
	s := RenderTrace(trace)
	for _, frag := range []string{"Rewrite passes:", "round 1:", "round 2:", "pushdown: fired (3 nodes)", "shard-scans: fired (3 -> 9 nodes)", "pushdown: -"} {
		if !strings.Contains(s, frag) {
			t.Errorf("trace rendering missing %q:\n%s", frag, s)
		}
	}
}
