package plan

import (
	"strings"
	"testing"
)

func TestToDOTStructure(t *testing.T) {
	p := samplePlan()
	p.EstCard, p.TrueCard = 42, 40
	out := ToDOT(p)

	if !strings.HasPrefix(out, "digraph plan {\n") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a digraph:\n%s", out)
	}
	// One box per operator, each child wired to its parent.
	for _, want := range []string{
		"n0 [label=\"HashJoin", // root gets id 0
		"SeqScan\\na",
		"IndexScan\\nb",
		"a.v > 3",
		"a.id = b.a_id",
		"est=42 true=40",
		"n1 -> n0;",
		"n2 -> n0;",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "[label="); got != 3 {
		t.Fatalf("expected 3 labeled nodes, found %d:\n%s", got, out)
	}
}

func TestEscapeDOT(t *testing.T) {
	got := escapeDOT("a\"b\nc")
	if got != `a\"b\nc` {
		t.Fatalf("escapeDOT = %q", got)
	}
}
