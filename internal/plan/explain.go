package plan

import (
	"fmt"
	"strings"
	"time"
)

// Actuals is one operator's measured execution evidence, supplied by the
// executor's telemetry. The plan package defines the type (rather than
// importing the executor) so rendering stays dependency-free.
type Actuals struct {
	Rows    float64       // actual output cardinality
	Work    float64       // work units charged to this operator alone
	Wall    time.Duration // wall-clock inside the operator
	Batches int64         // batches emitted
	// Zone-map pruning evidence for vectorized scans: blocks covered and
	// blocks skipped without scanning. Rendered only when BlocksTotal > 0.
	BlocksTotal   int64
	BlocksSkipped int64
}

// RenderAnalyze renders the EXPLAIN ANALYZE view of an executed plan:
// the indented operator tree with estimated vs. actual rows, per-operator
// work units and wall time. lookup maps each node to its measured
// actuals; nodes without telemetry (never reached) render estimates only.
func RenderAnalyze(root *Node, lookup func(*Node) (Actuals, bool)) string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if n == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		if n.IsLeaf() || n.Op == Merge {
			fmt.Fprintf(&b, "%s %s", n.Op, n.Alias)
			if n.Table != n.Alias && n.Table != "" {
				fmt.Fprintf(&b, " (%s)", n.Table)
			}
			if n.Op == Merge {
				fmt.Fprintf(&b, " [%d shards]", len(n.Shards))
			}
			if len(n.Preds) > 0 {
				strs := make([]string, len(n.Preds))
				for i, p := range n.Preds {
					strs[i] = p.String()
				}
				fmt.Fprintf(&b, " filter: %s", strings.Join(strs, " AND "))
			}
		} else if n.Op == Exchange {
			fmt.Fprintf(&b, "%s [shard %d/%d]", n.Op, n.Shard, n.ShardOf)
		} else {
			strs := make([]string, len(n.Cond))
			for i, j := range n.Cond {
				strs[i] = j.String()
			}
			fmt.Fprintf(&b, "%s on %s", n.Op, strings.Join(strs, " AND "))
		}
		if a, ok := lookup(n); ok {
			fmt.Fprintf(&b, "  (est=%.0f actual=%.0f work=%.1f time=%s batches=%d",
				n.EstCard, a.Rows, a.Work, a.Wall.Round(time.Microsecond), a.Batches)
			if a.BlocksTotal > 0 {
				fmt.Fprintf(&b, " blocks=%d skipped=%d", a.BlocksTotal, a.BlocksSkipped)
			}
			b.WriteString(")")
		} else {
			fmt.Fprintf(&b, "  (est=%.0f actual=-)", n.EstCard)
		}
		b.WriteString("\n")
		rec(n.Left, depth+1)
		rec(n.Right, depth+1)
		for _, s := range n.Shards {
			rec(s, depth+1)
		}
	}
	rec(root, 0)
	return b.String()
}

// RenderTrace renders the rewrite-pass trace appended to EXPLAIN output:
// one line per pass execution, grouped by fixpoint round. An empty trace
// renders as an empty string.
func RenderTrace(trace []PassTrace) string {
	if len(trace) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("Rewrite passes:\n")
	round := 0
	for _, t := range trace {
		if t.Round != round {
			round = t.Round
			fmt.Fprintf(&b, " round %d:\n", round)
		}
		fmt.Fprintf(&b, "  %s\n", t)
	}
	return b.String()
}
