package joinorder

import (
	"math"
	"math/rand"

	"lqo/internal/metrics"
	"lqo/internal/ml"
	"lqo/internal/opt"
	"lqo/internal/plan"
	"lqo/internal/query"
)

// stateFeatures is the shared (state, action) featurization for the RL
// searchers: joined-set one-hot, action one-hot, the action's estimated
// filtered cardinality (the signal that generalizes across queries — join
// selective inputs early), progress and connectivity.
type stateFeatures struct {
	tables []string
	idx    map[string]int
	est    opt.CardEstimator
}

func newStateFeatures(tables []string, est opt.CardEstimator) *stateFeatures {
	f := &stateFeatures{tables: tables, idx: map[string]int{}, est: est}
	for i, t := range tables {
		f.idx[t] = i
	}
	return f
}

func (f *stateFeatures) dim() int { return 2*len(f.tables) + 4 }

func (f *stateFeatures) vector(q *query.Query, g *query.JoinGraph, joined map[string]bool, action string) []float64 {
	v := make([]float64, f.dim())
	for a := range joined {
		if i, ok := f.idx[q.TableOf(a)]; ok {
			v[i] = 1
		}
	}
	if i, ok := f.idx[q.TableOf(action)]; ok {
		v[len(f.tables)+i] = 1
	}
	base := 2 * len(f.tables)
	v[base] = float64(len(joined)) / float64(len(q.Refs)+1)
	if len(joined) == 0 || g.ConnectsTo(action, joined) {
		v[base+1] = 1
	}
	// Estimated filtered rows of the candidate and how selective its
	// filters are relative to incident join edges.
	sub := q.Subquery(map[string]bool{action: true})
	rows := metrics.ClampCard(f.est.Estimate(sub))
	v[base+2] = math.Log1p(rows) / 20
	v[base+3] = float64(len(g.Edges(action))) / 8
	return v
}

// episodeReturn converts a final plan cost to the RL return: bounded,
// higher is better.
func episodeReturn(cost float64) float64 {
	return -math.Log1p(cost) / 25
}

// runEpisode builds an order with the given action-selection policy and
// returns the order and its cost-based return.
func runEpisode(base *opt.Optimizer, q *query.Query, choose func(g *query.JoinGraph, joined map[string]bool, cands []string) string) []string {
	g := query.NewJoinGraph(q)
	joined := map[string]bool{}
	var order []string
	remaining := q.Aliases()
	for len(remaining) > 0 {
		// Connected candidates preferred, all if none.
		var cands []string
		if len(order) > 0 {
			for _, a := range remaining {
				if g.ConnectsTo(a, joined) {
					cands = append(cands, a)
				}
			}
		}
		if len(cands) == 0 {
			cands = remaining
		}
		pick := choose(g, joined, cands)
		order = append(order, pick)
		joined[pick] = true
		next := remaining[:0]
		for _, a := range remaining {
			if a != pick {
				next = append(next, a)
			}
		}
		remaining = next
	}
	return order
}

// DQ is the Deep-Q line [15] at linear scale: Q(s, a) = w·φ(s, a) trained
// by Monte-Carlo ε-greedy episodes on the workload, with the episode
// return derived from the base optimizer's plan cost.
//
// Simplification vs. the paper: Monte-Carlo returns replace bootstrapped
// TD targets (terminal-only reward makes them equivalent in expectation),
// and the function class is linear; RTOS below provides the neural
// variant.
type DQ struct {
	Alpha   float64 // learning rate (default 0.05)
	Epsilon float64 // exploration (default 0.2, decayed)

	f    *stateFeatures
	w    []float64
	base *opt.Optimizer
	rng  *rand.Rand
}

// NewDQ returns an untrained DQ searcher.
func NewDQ() *DQ { return &DQ{Alpha: 0.05, Epsilon: 0.2} }

// Name implements Searcher.
func (s *DQ) Name() string { return "dq" }

func (s *DQ) q(x []float64) float64 {
	out := 0.0
	for i, v := range x {
		out += s.w[i] * v
	}
	return out
}

// Train implements Searcher.
func (s *DQ) Train(ctx *Context) error {
	s.base = ctx.Base
	s.f = newStateFeatures(ctx.Cat.TableNames(), ctx.Base.Est)
	s.w = make([]float64, s.f.dim())
	s.rng = rand.New(rand.NewSource(ctx.Seed + 31))
	if len(ctx.Workload) == 0 {
		return nil
	}
	eps := s.Epsilon
	for ep := 0; ep < ctx.episodes(); ep++ {
		q := ctx.Workload[s.rng.Intn(len(ctx.Workload))]
		var steps [][]float64
		order := runEpisode(s.base, q, func(g *query.JoinGraph, joined map[string]bool, cands []string) string {
			var pick string
			if s.rng.Float64() < eps {
				pick = cands[s.rng.Intn(len(cands))]
			} else {
				best := math.Inf(-1)
				for _, a := range cands {
					if v := s.q(s.f.vector(q, g, joined, a)); v > best {
						best, pick = v, a
					}
				}
			}
			steps = append(steps, s.f.vector(q, g, joined, pick))
			return pick
		})
		g := episodeReturn(planCost(s.base, q, order))
		for _, x := range steps {
			err := g - s.q(x)
			for i, v := range x {
				s.w[i] += s.Alpha * err * v
			}
		}
		eps *= 0.995
	}
	return nil
}

// Plan implements Searcher.
func (s *DQ) Plan(q *query.Query) (*plan.Node, error) {
	order := runEpisode(s.base, q, func(g *query.JoinGraph, joined map[string]bool, cands []string) string {
		best := math.Inf(-1)
		pick := cands[0]
		for _, a := range cands {
			if v := s.q(s.f.vector(q, g, joined, a)); v > best {
				best, pick = v, a
			}
		}
		return pick
	})
	return s.base.PlanFromOrder(q, order)
}

// ReJoin is the policy-gradient line [24]: a softmax policy over
// candidate actions with linear scores, trained by REINFORCE on the same
// episode protocol as DQ.
type ReJoin struct {
	Alpha float64 // learning rate (default 0.05)
	Temp  float64 // softmax temperature (default 1)

	f     *stateFeatures
	theta []float64
	base  *opt.Optimizer
	rng   *rand.Rand
}

// NewReJoin returns an untrained ReJoin searcher.
func NewReJoin() *ReJoin { return &ReJoin{Alpha: 0.05, Temp: 1} }

// Name implements Searcher.
func (s *ReJoin) Name() string { return "rejoin" }

func (s *ReJoin) score(x []float64) float64 {
	out := 0.0
	for i, v := range x {
		out += s.theta[i] * v
	}
	return out
}

// policy returns softmax probabilities over the candidates.
func (s *ReJoin) policy(q *query.Query, g *query.JoinGraph, joined map[string]bool, cands []string) ([]float64, [][]float64) {
	feats := make([][]float64, len(cands))
	logits := make([]float64, len(cands))
	for i, a := range cands {
		feats[i] = s.f.vector(q, g, joined, a)
		logits[i] = s.score(feats[i]) / s.Temp
	}
	return ml.Softmax(logits, nil), feats
}

// Train implements Searcher.
func (s *ReJoin) Train(ctx *Context) error {
	s.base = ctx.Base
	s.f = newStateFeatures(ctx.Cat.TableNames(), ctx.Base.Est)
	s.theta = make([]float64, s.f.dim())
	s.rng = rand.New(rand.NewSource(ctx.Seed + 37))
	if len(ctx.Workload) == 0 {
		return nil
	}
	baseline := 0.0
	haveBaseline := false
	for ep := 0; ep < ctx.episodes(); ep++ {
		q := ctx.Workload[s.rng.Intn(len(ctx.Workload))]
		type step struct {
			probs []float64
			feats [][]float64
			pick  int
		}
		var steps []step
		order := runEpisode(s.base, q, func(g *query.JoinGraph, joined map[string]bool, cands []string) string {
			probs, feats := s.policy(q, g, joined, cands)
			r := s.rng.Float64()
			pick := len(cands) - 1
			for i, p := range probs {
				r -= p
				if r <= 0 {
					pick = i
					break
				}
			}
			steps = append(steps, step{probs, feats, pick})
			return cands[pick]
		})
		g := episodeReturn(planCost(s.base, q, order))
		if !haveBaseline {
			baseline = g
			haveBaseline = true
		}
		adv := g - baseline
		baseline = 0.95*baseline + 0.05*g
		for _, st := range steps {
			// ∇log π = φ(pick) − Σ_i π_i φ_i.
			for i, f := range st.feats {
				coeff := -st.probs[i]
				if i == st.pick {
					coeff += 1
				}
				for d, v := range f {
					s.theta[d] += s.Alpha * adv * coeff * v / s.Temp
				}
			}
		}
	}
	return nil
}

// Plan implements Searcher.
func (s *ReJoin) Plan(q *query.Query) (*plan.Node, error) {
	order := runEpisode(s.base, q, func(g *query.JoinGraph, joined map[string]bool, cands []string) string {
		probs, _ := s.policy(q, g, joined, cands)
		best, pick := -1.0, cands[0]
		for i, p := range probs {
			if p > best {
				best, pick = p, cands[i]
			}
		}
		return pick
	})
	return s.base.PlanFromOrder(q, order)
}

// RTOS is the neural value-function line [73]: identical episode protocol
// to DQ but Q(s, a) is a small MLP, standing in for the paper's Tree-LSTM
// state encoder at workbench scale.
type RTOS struct {
	Epsilon float64
	LR      float64

	f    *stateFeatures
	net  *ml.Net
	adam *ml.Adam
	base *opt.Optimizer
	rng  *rand.Rand
}

// NewRTOS returns an untrained RTOS searcher.
func NewRTOS() *RTOS { return &RTOS{Epsilon: 0.2, LR: 1e-3} }

// Name implements Searcher.
func (s *RTOS) Name() string { return "rtos" }

func (s *RTOS) q(x []float64) float64 { return s.net.Forward(x)[0] }

// Train implements Searcher.
func (s *RTOS) Train(ctx *Context) error {
	s.base = ctx.Base
	s.f = newStateFeatures(ctx.Cat.TableNames(), ctx.Base.Est)
	s.rng = rand.New(rand.NewSource(ctx.Seed + 41))
	net, err := ml.NewNet([]int{s.f.dim(), 32, 1}, ml.ReLU, s.rng)
	if err != nil {
		return err
	}
	s.net = net
	s.adam = ml.NewAdam(s.LR, s.net)
	if len(ctx.Workload) == 0 {
		return nil
	}
	eps := s.Epsilon
	for ep := 0; ep < ctx.episodes(); ep++ {
		q := ctx.Workload[s.rng.Intn(len(ctx.Workload))]
		var steps [][]float64
		order := runEpisode(s.base, q, func(g *query.JoinGraph, joined map[string]bool, cands []string) string {
			var pick string
			if s.rng.Float64() < eps {
				pick = cands[s.rng.Intn(len(cands))]
			} else {
				best := math.Inf(-1)
				for _, a := range cands {
					if v := s.q(s.f.vector(q, g, joined, a)); v > best {
						best, pick = v, a
					}
				}
			}
			steps = append(steps, s.f.vector(q, g, joined, pick))
			return pick
		})
		g := episodeReturn(planCost(s.base, q, order))
		for _, x := range steps {
			c := s.net.ForwardCache(x)
			diff := c.Output()[0] - g
			s.net.Backward(c, []float64{2 * diff})
		}
		s.adam.Step(len(steps))
		eps *= 0.995
	}
	return nil
}

// Plan implements Searcher.
func (s *RTOS) Plan(q *query.Query) (*plan.Node, error) {
	order := runEpisode(s.base, q, func(g *query.JoinGraph, joined map[string]bool, cands []string) string {
		best := math.Inf(-1)
		pick := cands[0]
		for _, a := range cands {
			if v := s.q(s.f.vector(q, g, joined, a)); v > best {
				best, pick = v, a
			}
		}
		return pick
	})
	return s.base.PlanFromOrder(q, order)
}
