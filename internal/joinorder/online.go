package joinorder

import (
	"math"
	"math/rand"
	"sort"

	"lqo/internal/opt"
	"lqo/internal/plan"
	"lqo/internal/query"
	"lqo/internal/stats"
)

// MCTS is the SkinnerDB line [56]: per-query Monte-Carlo tree search (UCT)
// over join orders, requiring no offline training.
//
// Substitution vs. the paper: SkinnerDB switches join orders *during*
// execution in time slices with regret bounds; the workbench executor has
// no mid-query switching, so each UCT simulation evaluates a complete
// order under the cost model instead of a time slice of real execution.
// The search dynamics (UCT selection, incremental tree growth, best-order
// extraction) follow the paper.
type MCTS struct {
	// Iterations per query (default 200).
	Iterations int
	// C is the UCT exploration constant (default 1.2).
	C float64

	base *opt.Optimizer
	rng  *rand.Rand
}

// NewMCTS returns an online MCTS searcher; iterations <= 0 uses 200.
func NewMCTS(iterations int) *MCTS {
	if iterations <= 0 {
		iterations = 200
	}
	return &MCTS{Iterations: iterations, C: 1.2}
}

// Name implements Searcher.
func (s *MCTS) Name() string { return "skinner-mcts" }

// Train implements Searcher (online method: records the evaluator only).
func (s *MCTS) Train(ctx *Context) error {
	s.base = ctx.Base
	s.rng = rand.New(rand.NewSource(ctx.Seed + 43))
	return nil
}

type uctNode struct {
	children map[string]*uctNode
	visits   float64
	total    float64 // sum of returns
}

func newUCTNode() *uctNode { return &uctNode{children: map[string]*uctNode{}} }

// Plan implements Searcher.
func (s *MCTS) Plan(q *query.Query) (*plan.Node, error) {
	g := query.NewJoinGraph(q)
	root := newUCTNode()
	aliases := q.Aliases()

	bestCost := math.Inf(1)
	var bestOrder []string
	for it := 0; it < s.Iterations; it++ {
		node := root
		joined := map[string]bool{}
		var order []string
		remaining := append([]string(nil), aliases...)
		// Selection + expansion.
		for len(remaining) > 0 {
			cands := connectedCands(g, joined, remaining, len(order) > 0)
			pick := s.selectUCT(node, cands)
			order = append(order, pick)
			joined[pick] = true
			remaining = removeStr(remaining, pick)
			child, ok := node.children[pick]
			if !ok {
				child = newUCTNode()
				node.children[pick] = child
				// Rollout: random completion.
				for len(remaining) > 0 {
					rc := connectedCands(g, joined, remaining, true)
					a := rc[s.rng.Intn(len(rc))]
					order = append(order, a)
					joined[a] = true
					remaining = removeStr(remaining, a)
				}
				node = child
				break
			}
			node = child
		}
		cost := planCost(s.base, q, order)
		if cost < bestCost {
			bestCost = cost
			bestOrder = append([]string(nil), order...)
		}
		ret := episodeReturn(cost)
		// Backup along the taken path.
		node = root
		node.visits++
		node.total += ret
		for _, a := range order {
			child, ok := node.children[a]
			if !ok {
				break
			}
			child.visits++
			child.total += ret
			node = child
		}
	}
	if bestOrder == nil {
		bestOrder = aliases
	}
	return s.base.PlanFromOrder(q, bestOrder)
}

func (s *MCTS) selectUCT(node *uctNode, cands []string) string {
	// Unvisited candidates first (deterministic order, then rng among them).
	var fresh []string
	for _, a := range cands {
		if node.children[a] == nil {
			fresh = append(fresh, a)
		}
	}
	if len(fresh) > 0 {
		return fresh[s.rng.Intn(len(fresh))]
	}
	best := math.Inf(-1)
	pick := cands[0]
	for _, a := range cands {
		ch := node.children[a]
		ucb := ch.total/ch.visits + s.C*math.Sqrt(math.Log(node.visits+1)/ch.visits)
		if ucb > best {
			best, pick = ucb, a
		}
	}
	return pick
}

func connectedCands(g *query.JoinGraph, joined map[string]bool, remaining []string, requireConnected bool) []string {
	if !requireConnected || len(joined) == 0 {
		return remaining
	}
	var out []string
	for _, a := range remaining {
		if g.ConnectsTo(a, joined) {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return remaining
	}
	return out
}

func removeStr(xs []string, v string) []string {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// Eddy is the adaptive-ordering line [58]: order tables by their observed
// filtered selectivity (cheapest, most selective inputs first), measured
// on the statistics samples at plan time — adapting to the actual query
// rather than a learned model.
//
// Substitution vs. the paper: true eddies reroute tuples operator-by-
// operator mid-execution; the workbench fixes the order per query using
// the same selectivity signal the eddy's lottery scheduling converges to.
type Eddy struct {
	base  *opt.Optimizer
	stats *stats.CatalogStats
}

// NewEddy returns the adaptive baseline.
func NewEddy() *Eddy { return &Eddy{} }

// Name implements Searcher.
func (s *Eddy) Name() string { return "eddy" }

// Train implements Searcher.
func (s *Eddy) Train(ctx *Context) error {
	s.base = ctx.Base
	s.stats = ctx.Base.Cost.Stats
	return nil
}

// Plan implements Searcher.
func (s *Eddy) Plan(q *query.Query) (*plan.Node, error) {
	g := query.NewJoinGraph(q)
	type scored struct {
		alias string
		rows  float64
	}
	var all []scored
	for _, r := range q.Refs {
		ts := s.stats.Tables[r.Table]
		rows := 0.0
		if ts != nil {
			sel := 1.0
			for _, p := range q.PredsOn(r.Alias) {
				cs := ts.Cols[p.Column]
				if cs == nil {
					sel /= 3
					continue
				}
				lo, hi := p.Bounds(cs.Min, cs.Max)
				if p.Op == query.Eq {
					sel *= cs.Hist.SelectivityEq(p.Val.AsFloat())
				} else {
					sel *= cs.Hist.SelectivityRange(lo, hi)
				}
			}
			rows = ts.Rows * sel
		}
		all = append(all, scored{r.Alias, rows})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rows < all[j].rows })
	// Greedily build a connected order preferring small filtered inputs.
	joined := map[string]bool{}
	var order []string
	used := map[string]bool{}
	for len(order) < len(all) {
		picked := false
		for _, c := range all {
			if used[c.alias] {
				continue
			}
			if len(order) > 0 && !g.ConnectsTo(c.alias, joined) {
				continue
			}
			order = append(order, c.alias)
			joined[c.alias] = true
			used[c.alias] = true
			picked = true
			break
		}
		if !picked {
			for _, c := range all { // disconnected remainder
				if !used[c.alias] {
					order = append(order, c.alias)
					joined[c.alias] = true
					used[c.alias] = true
					break
				}
			}
		}
	}
	return s.base.PlanFromOrder(q, order)
}
