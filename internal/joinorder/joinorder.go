// Package joinorder implements the learned join-order-search taxonomy of
// the tutorial's Section 2.1.3: offline reinforcement-learning methods
// (DQ [15]-style Q-learning with linear approximation, ReJoin [24]-style
// policy gradients, RTOS [73]-style neural value functions) and online
// methods (SkinnerDB [56]-style Monte-Carlo tree search, Eddy [58]-style
// selectivity-adaptive ordering), plus the classical DP/greedy/random
// baselines, all producing physical plans through the same evaluation path
// (opt.PlanFromOrder) so their plan quality is directly comparable.
package joinorder

import (
	"fmt"
	"math/rand"

	"lqo/internal/data"
	"lqo/internal/opt"
	"lqo/internal/plan"
	"lqo/internal/query"
)

// Context carries training inputs for join-order searchers.
type Context struct {
	Cat *data.Catalog
	// Base is the optimizer used to evaluate orders (cost model +
	// cardinality estimator) and by the DP/greedy baselines.
	Base     *opt.Optimizer
	Workload []*query.Query
	Episodes int // RL training episodes (default 300)
	Seed     int64
}

func (c *Context) episodes() int {
	if c.Episodes > 0 {
		return c.Episodes
	}
	return 300
}

// Searcher produces a physical plan for a query; learned searchers choose
// the join order, delegating operator selection to the base optimizer.
type Searcher interface {
	// Name identifies the method.
	Name() string
	// Train fits the searcher (no-op for online and classical methods).
	Train(ctx *Context) error
	// Plan returns a physical plan for q.
	Plan(q *query.Query) (*plan.Node, error)
}

// Info describes a registered searcher.
type Info struct {
	Name string
	Make func() Searcher
}

// Registry lists every join-order method the workbench ships.
func Registry() []Info {
	return []Info{
		{"dp", func() Searcher { return NewDP() }},
		{"greedy", func() Searcher { return NewGreedy() }},
		{"random", func() Searcher { return NewRandom(0) }},
		{"dq", func() Searcher { return NewDQ() }},
		{"rejoin", func() Searcher { return NewReJoin() }},
		{"rtos", func() Searcher { return NewRTOS() }},
		{"skinner-mcts", func() Searcher { return NewMCTS(0) }},
		{"eddy", func() Searcher { return NewEddy() }},
	}
}

// ByName constructs a registered searcher, or errors.
func ByName(name string) (Searcher, error) {
	for _, inf := range Registry() {
		if inf.Name == name {
			return inf.Make(), nil
		}
	}
	return nil, fmt.Errorf("joinorder: unknown searcher %q", name)
}

// DP is the exhaustive dynamic-programming baseline (optimal under the
// base optimizer's cost model).
type DP struct{ base *opt.Optimizer }

// NewDP returns the DP baseline.
func NewDP() *DP { return &DP{} }

// Name implements Searcher.
func (s *DP) Name() string { return "dp" }

// Train implements Searcher.
func (s *DP) Train(ctx *Context) error { s.base = ctx.Base; return nil }

// Plan implements Searcher.
func (s *DP) Plan(q *query.Query) (*plan.Node, error) { return s.base.Optimize(q) }

// Greedy is the classical greedy baseline.
type Greedy struct{ base *opt.Optimizer }

// NewGreedy returns the greedy baseline.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Searcher.
func (s *Greedy) Name() string { return "greedy" }

// Train implements Searcher.
func (s *Greedy) Train(ctx *Context) error { s.base = ctx.Base; return nil }

// Plan implements Searcher.
func (s *Greedy) Plan(q *query.Query) (*plan.Node, error) { return s.base.OptimizeGreedy(q) }

// Random joins in a random connected order — the sanity-check floor.
type Random struct {
	base *opt.Optimizer
	rng  *rand.Rand
	seed int64
}

// NewRandom returns the random-order baseline.
func NewRandom(seed int64) *Random { return &Random{seed: seed} }

// Name implements Searcher.
func (s *Random) Name() string { return "random" }

// Train implements Searcher.
func (s *Random) Train(ctx *Context) error {
	s.base = ctx.Base
	s.rng = rand.New(rand.NewSource(ctx.Seed + s.seed + 23))
	return nil
}

// Plan implements Searcher.
func (s *Random) Plan(q *query.Query) (*plan.Node, error) {
	order := randomConnectedOrder(q, s.rng)
	return s.base.PlanFromOrder(q, order)
}

// randomConnectedOrder returns a uniformly random order that keeps every
// prefix connected when possible.
func randomConnectedOrder(q *query.Query, rng *rand.Rand) []string {
	g := query.NewJoinGraph(q)
	aliases := q.Aliases()
	order := make([]string, 0, len(aliases))
	joined := map[string]bool{}
	remaining := append([]string(nil), aliases...)
	for len(remaining) > 0 {
		var cands []int
		if len(order) > 0 {
			for i, a := range remaining {
				if g.ConnectsTo(a, joined) {
					cands = append(cands, i)
				}
			}
		}
		var pick int
		if len(cands) > 0 {
			pick = cands[rng.Intn(len(cands))]
		} else {
			pick = rng.Intn(len(remaining))
		}
		a := remaining[pick]
		order = append(order, a)
		joined[a] = true
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return order
}

// planCost evaluates an order under the base optimizer's cost model.
func planCost(base *opt.Optimizer, q *query.Query, order []string) float64 {
	p, err := base.PlanFromOrder(q, order)
	if err != nil {
		return 1e18
	}
	return p.EstCost
}
