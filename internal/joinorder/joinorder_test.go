package joinorder

import (
	"math"
	"math/rand"
	"testing"

	"lqo/internal/cardest"
	"lqo/internal/cost"
	"lqo/internal/data"
	"lqo/internal/datagen"
	"lqo/internal/exec"
	"lqo/internal/metrics"
	"lqo/internal/opt"
	"lqo/internal/query"
	"lqo/internal/stats"
	"lqo/internal/workload"
)

type fixture struct {
	cat  *data.Catalog
	ex   *exec.Executor
	ctx  *Context
	test []*query.Query
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	cat := datagen.StatsCEB(datagen.Config{Seed: 13, Scale: 0.04})
	cs := stats.CollectCatalog(cat, stats.Options{Seed: 13})
	ex := exec.New(cat)
	hist := cardest.NewHistogramEstimator()
	if err := hist.Train(&cardest.Context{Cat: cat, Stats: cs, Seed: 13}); err != nil {
		t.Fatal(err)
	}
	base := opt.New(cat, cost.New(cs), hist)
	qs := workload.GenWorkload(cat, workload.Options{Seed: 13, Count: 40, MinJoins: 2, MaxJoins: 4, MaxPreds: 3})
	shared = &fixture{
		cat: cat, ex: ex,
		ctx:  &Context{Cat: cat, Base: base, Workload: qs[:25], Episodes: 150, Seed: 13},
		test: qs[25:],
	}
	return shared
}

func TestRegistry(t *testing.T) {
	if len(Registry()) < 8 {
		t.Fatalf("registry = %d", len(Registry()))
	}
	for _, inf := range Registry() {
		s := inf.Make()
		if s.Name() != inf.Name {
			t.Fatalf("%s name mismatch", inf.Name)
		}
	}
	if _, err := ByName("dq"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown accepted")
	}
}

// TestAllSearchersProduceCorrectPlans: every method's plan must execute
// and return the same count as the canonical plan.
func TestAllSearchersProduceCorrectPlans(t *testing.T) {
	f := getFixture(t)
	for _, inf := range Registry() {
		inf := inf
		t.Run(inf.Name, func(t *testing.T) {
			s := inf.Make()
			if err := s.Train(f.ctx); err != nil {
				t.Fatal(err)
			}
			for _, q := range f.test[:5] {
				p, err := s.Plan(q)
				if err != nil {
					t.Fatalf("%s: %v", q.SQL(), err)
				}
				got, err := f.ex.Run(q, p)
				if err != nil {
					t.Fatalf("%s plan failed: %v", inf.Name, err)
				}
				canonical, _ := exec.CanonicalPlan(q)
				want, err := f.ex.Run(q, canonical)
				if err != nil {
					t.Fatal(err)
				}
				if got.Count != want.Count {
					t.Fatalf("%s wrong result: %d vs %d", inf.Name, got.Count, want.Count)
				}
			}
		})
	}
}

// costRatio evaluates a searcher's mean plan-cost ratio vs DP-optimal.
func costRatio(t *testing.T, f *fixture, s Searcher) float64 {
	t.Helper()
	dp := NewDP()
	if err := dp.Train(f.ctx); err != nil {
		t.Fatal(err)
	}
	var ratios []float64
	for _, q := range f.test {
		opt, err := dp.Plan(q)
		if err != nil {
			continue
		}
		p, err := s.Plan(q)
		if err != nil {
			continue
		}
		if opt.EstCost <= 0 {
			continue
		}
		ratios = append(ratios, p.EstCost/opt.EstCost)
	}
	if len(ratios) == 0 {
		t.Fatal("no ratios")
	}
	return metrics.GeoMean(ratios)
}

func TestLearnedSearchersBeatRandom(t *testing.T) {
	f := getFixture(t)
	random := NewRandom(0)
	if err := random.Train(f.ctx); err != nil {
		t.Fatal(err)
	}
	randRatio := costRatio(t, f, random)
	for _, name := range []string{"dq", "skinner-mcts", "eddy"} {
		s, _ := ByName(name)
		if err := s.Train(f.ctx); err != nil {
			t.Fatal(err)
		}
		r := costRatio(t, f, s)
		if r > randRatio*1.05 {
			t.Errorf("%s ratio %v worse than random %v", name, r, randRatio)
		}
		if r < 1-1e-9 {
			t.Errorf("%s ratio %v below DP optimum — cost accounting broken", name, r)
		}
	}
}

func TestMCTSApproachesDP(t *testing.T) {
	f := getFixture(t)
	s := NewMCTS(300)
	if err := s.Train(f.ctx); err != nil {
		t.Fatal(err)
	}
	r := costRatio(t, f, s)
	if r > 1.5 {
		t.Fatalf("MCTS geo cost ratio vs DP = %v", r)
	}
}

func TestDPIsOptimalAmongSearchers(t *testing.T) {
	f := getFixture(t)
	dp := NewDP()
	if err := dp.Train(f.ctx); err != nil {
		t.Fatal(err)
	}
	if r := costRatio(t, f, dp); math.Abs(r-1) > 1e-9 {
		t.Fatalf("DP self-ratio = %v", r)
	}
	greedy := NewGreedy()
	if err := greedy.Train(f.ctx); err != nil {
		t.Fatal(err)
	}
	if r := costRatio(t, f, greedy); r < 1-1e-9 {
		t.Fatalf("greedy beat DP: %v", r)
	}
}

func TestRandomConnectedOrderKeepsPrefixConnected(t *testing.T) {
	f := getFixture(t)
	rng := rand.New(rand.NewSource(99))
	for _, q := range f.test {
		if len(q.Refs) < 3 {
			continue
		}
		order := randomConnectedOrder(q, rng)
		if len(order) != len(q.Refs) {
			t.Fatalf("order size %d", len(order))
		}
		g := query.NewJoinGraph(q)
		joined := map[string]bool{order[0]: true}
		for _, a := range order[1:] {
			if !g.ConnectsTo(a, joined) {
				t.Fatalf("disconnected prefix in %v for %s", order, q.SQL())
			}
			joined[a] = true
		}
	}
}
