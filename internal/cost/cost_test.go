package cost

import (
	"math"
	"testing"

	"lqo/internal/data"
	"lqo/internal/plan"
	"lqo/internal/query"
	"lqo/internal/stats"
)

func testModel() *Model {
	cat := data.NewCatalog()
	id := &data.Column{Name: "id", Kind: data.Int}
	v := &data.Column{Name: "v", Kind: data.Int}
	for i := 0; i < 1000; i++ {
		id.AppendInt(int64(i))
		v.AppendInt(int64(i % 10))
	}
	t := data.NewTable("t", id, v)
	cat.Add(t)
	cs := stats.CollectCatalog(cat, stats.Options{Seed: 1})
	return New(cs)
}

func TestScanCostMonotoneInRows(t *testing.T) {
	m := testModel()
	small := m.ScanCost(plan.SeqScan, 100, 10, 1)
	big := m.ScanCost(plan.SeqScan, 10000, 10, 1)
	if big <= small {
		t.Fatalf("seq scan cost not monotone: %v vs %v", small, big)
	}
	if math.IsInf(m.ScanCost(plan.HashJoin, 1, 1, 0), 1) == false {
		t.Fatal("non-scan op should cost +inf")
	}
}

func TestIndexBeatsSeqForSelectiveLookup(t *testing.T) {
	m := testModel()
	rows := m.TableRows("t")
	idxRows := m.IndexFetchRows("t", "id") // unique key → ~1 row
	seq := m.ScanCost(plan.SeqScan, rows, 1, 1)
	idx := m.ScanCost(plan.IndexScan, idxRows, 1, 0)
	if idx >= seq {
		t.Fatalf("index %v should beat seq %v for unique lookup", idx, seq)
	}
}

func TestJoinCostShapes(t *testing.T) {
	m := testModel()
	// NL grows quadratically: doubling both inputs ~4x the cost.
	nl1 := m.JoinCost(plan.NestedLoopJoin, 100, 100, 10)
	nl2 := m.JoinCost(plan.NestedLoopJoin, 200, 200, 10)
	if nl2 < nl1*3 {
		t.Fatalf("NL cost not quadratic-ish: %v → %v", nl1, nl2)
	}
	// Hash join is linear-ish.
	h1 := m.JoinCost(plan.HashJoin, 100, 100, 10)
	h2 := m.JoinCost(plan.HashJoin, 200, 200, 10)
	if h2 > h1*3 {
		t.Fatalf("hash cost superlinear: %v → %v", h1, h2)
	}
	// For large equal inputs hash beats NL.
	if m.JoinCost(plan.HashJoin, 10000, 10000, 100) >= m.JoinCost(plan.NestedLoopJoin, 10000, 10000, 100) {
		t.Fatal("hash should beat NL at scale")
	}
	// For tiny inputs NL's lack of build cost can win.
	if m.JoinCost(plan.NestedLoopJoin, 2, 2, 1) >= m.JoinCost(plan.HashJoin, 2, 2, 1) {
		t.Fatal("NL should win on tiny inputs")
	}
	if !math.IsInf(m.JoinCost(plan.SeqScan, 1, 1, 1), 1) {
		t.Fatal("non-join op should cost +inf")
	}
}

func TestPlanCostAnnotatesNodes(t *testing.T) {
	m := testModel()
	j := query.Join{LeftAlias: "t", LeftCol: "id", RightAlias: "t2", RightCol: "id"}
	left := plan.NewScan(plan.SeqScan, "t", "t", nil)
	left.EstCard = 1000
	right := plan.NewScan(plan.SeqScan, "t2", "t", nil)
	right.EstCard = 1000
	root := plan.NewJoin(plan.HashJoin, left, right, []query.Join{j})
	root.EstCard = 1000
	total := m.PlanCost(root)
	if total <= 0 {
		t.Fatalf("total = %v", total)
	}
	if root.EstCost != total {
		t.Fatal("root EstCost not set")
	}
	if left.EstCost <= 0 || right.EstCost <= 0 {
		t.Fatal("child EstCost not set")
	}
	if root.EstCost <= left.EstCost+right.EstCost {
		t.Fatal("join adds no cost?")
	}
}

func TestPlanCostUsesIndexFetchRows(t *testing.T) {
	m := testModel()
	eq := query.Pred{Alias: "t", Column: "id", Op: query.Eq, Val: data.IntVal(5)}
	idx := plan.NewScan(plan.IndexScan, "t", "t", []query.Pred{eq})
	idx.EstCard = 1
	seq := plan.NewScan(plan.SeqScan, "t", "t", []query.Pred{eq})
	seq.EstCard = 1
	if m.PlanCost(idx) >= m.PlanCost(seq) {
		t.Fatal("index plan should cost less than seq plan for unique eq lookup")
	}
}

func TestTableRowsUnknown(t *testing.T) {
	m := testModel()
	if m.TableRows("nope") != 0 {
		t.Fatal("unknown table should have 0 rows")
	}
	if m.IndexFetchRows("nope", "x") != 0 {
		t.Fatal("unknown table index fetch should be 0")
	}
	if m.IndexFetchRows("t", "nope") != m.TableRows("t") {
		t.Fatal("unknown column should fall back to full rows")
	}
}
