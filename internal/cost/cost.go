// Package cost implements the traditional, rule-based cost model — the
// PostgreSQL-style baseline every learned cost model in the workbench is
// compared against.
//
// Its constants deliberately approximate (not duplicate) the executor's
// true charging: a real optimizer's cost model has the right shape but
// imperfect magnitudes, and that gap is exactly what learned cost models
// exploit in experiment E3.
package cost

import (
	"math"

	"lqo/internal/plan"
	"lqo/internal/query"
	"lqo/internal/stats"
)

// Cost constants. Compare exec's charging: shapes match, but magnitudes
// are deliberately in "optimizer cost units" rather than work units —
// roughly 4x scale with skewed per-operator ratios — because a real cost
// model's units are arbitrary (PostgreSQL costs are not milliseconds).
// Experiment E3's calibrated/learned models recover the true scale.
const (
	SeqTuple    = 4.0
	PredTuple   = 1.0
	HashBuild   = 7.0
	HashProbe   = 4.0
	IndexSeek   = 25.0
	OutputTuple = 1.5
	NLPair      = 0.45
	SortUnit    = 5.5
	Startup     = 40.0
)

// Model is the traditional cost model, parameterized by table statistics.
type Model struct {
	Stats *stats.CatalogStats
}

// New returns a cost model reading table statistics from cs.
func New(cs *stats.CatalogStats) *Model {
	return &Model{Stats: cs}
}

// ScanCost estimates the cost of a scan producing outRows.
//
// For SeqScan, inRows is the table row count. For IndexScan, inRows is the
// number of heap tuples fetched by the equality lookup (rows/NDV of the
// indexed column).
func (m *Model) ScanCost(op plan.Op, inRows, outRows float64, npreds int) float64 {
	switch op {
	case plan.SeqScan:
		return Startup + inRows*(SeqTuple+PredTuple*float64(npreds)) + outRows*OutputTuple
	case plan.IndexScan:
		return Startup + IndexSeek + inRows*(SeqTuple+PredTuple*float64(npreds)) + outRows*OutputTuple
	default:
		return math.Inf(1)
	}
}

// JoinCost estimates the cost of joining left (outer) and right (inner)
// inputs producing outRows, excluding the children's own costs.
func (m *Model) JoinCost(op plan.Op, leftRows, rightRows, outRows float64) float64 {
	switch op {
	case plan.HashJoin:
		return Startup + rightRows*HashBuild + leftRows*HashProbe + outRows*OutputTuple
	case plan.MergeJoin:
		return Startup + SortUnit*(nlogn(leftRows)+nlogn(rightRows)) + outRows*OutputTuple
	case plan.NestedLoopJoin:
		return Startup + leftRows*rightRows*NLPair + outRows*OutputTuple
	default:
		return math.Inf(1)
	}
}

// TableRows returns the statistics row count for a table (0 if unknown).
func (m *Model) TableRows(table string) float64 {
	if ts, ok := m.Stats.Tables[table]; ok {
		return ts.Rows
	}
	return 0
}

// IndexFetchRows estimates tuples fetched by an equality index lookup on
// table.col: rows divided by the column's distinct count.
func (m *Model) IndexFetchRows(table, col string) float64 {
	ts, ok := m.Stats.Tables[table]
	if !ok {
		return 0
	}
	cs, ok := ts.Cols[col]
	if !ok || cs.Distinct < 1 {
		return ts.Rows
	}
	return ts.Rows / cs.Distinct
}

// PlanCost computes the total cost of an annotated plan tree whose EstCard
// fields are already filled, writing per-node EstCost and returning the
// root total. Scan input rows are derived from statistics.
func (m *Model) PlanCost(root *plan.Node) float64 {
	return m.planCost(root)
}

func (m *Model) planCost(n *plan.Node) float64 {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		inRows := m.TableRows(n.Table)
		npreds := len(n.Preds)
		if n.Op == plan.IndexScan {
			for _, p := range n.Preds {
				// The first equality predicate drives the index lookup.
				if p.Op == query.Eq {
					inRows = m.IndexFetchRows(n.Table, p.Column)
					npreds--
					break
				}
			}
		}
		n.EstCost = m.ScanCost(n.Op, inRows, n.EstCard, npreds)
		return n.EstCost
	}
	lc := m.planCost(n.Left)
	rc := m.planCost(n.Right)
	own := m.JoinCost(n.Op, n.Left.EstCard, n.Right.EstCard, n.EstCard)
	n.EstCost = lc + rc + own
	return n.EstCost
}

func nlogn(n float64) float64 {
	if n < 2 {
		return n
	}
	return n * math.Log2(n)
}
