package costmodel

import (
	"context"
	"testing"

	"lqo/internal/plan"
)

// perOpPlan re-executes a world TrainPlan with telemetry and fills PerOp
// the way the bench collector does.
func perOpPlan(t *testing.T, w *world, tp TrainPlan) TrainPlan {
	t.Helper()
	res, pt, err := w.ex.RunAnalyze(context.Background(), tp.Q, tp.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WorkUnits != tp.Latency {
		t.Fatalf("re-execution charged %v, recorded %v", res.Stats.WorkUnits, tp.Latency)
	}
	var perOp []OpActual
	tp.Plan.Walk(func(n *plan.Node) {
		ot, ok := pt.ByNode(n)
		if !ok {
			t.Fatalf("no telemetry for node %v", n.Aliases())
		}
		perOp = append(perOp, OpActual{
			Node:        n,
			Rows:        float64(ot.RowsOut),
			Work:        ot.WorkUnits(),
			SubtreeWork: pt.SubtreeWork(n),
			Wall:        ot.Wall,
		})
	})
	tp.PerOp = perOp
	return tp
}

// pickJoinPlan returns a world plan with at least one join, so sub-plan
// expansion has non-root nodes to emit.
func pickJoinPlan(t *testing.T, w *world) TrainPlan {
	t.Helper()
	for _, tp := range w.test {
		if tp.Plan.NumJoins() >= 1 {
			return tp
		}
	}
	t.Fatal("no join plan in test split")
	return TrainPlan{}
}

func TestExpandSubPlans(t *testing.T) {
	w := buildWorld(t)
	tp := perOpPlan(t, w, pickJoinPlan(t, w))
	out := ExpandSubPlans(tp)
	nodes := tp.Plan.Nodes()
	if len(out) != len(nodes) {
		t.Fatalf("expanded to %d samples from %d plan nodes", len(out), len(nodes))
	}
	if out[0].Plan != tp.Plan || out[0].Latency != tp.Latency {
		t.Fatalf("root sample altered: %+v", out[0])
	}
	for _, s := range out[1:] {
		if s.Plan == tp.Plan {
			t.Fatal("root emitted twice")
		}
		if s.Q == nil || len(s.Q.Refs) != len(s.Plan.Aliases()) {
			t.Fatalf("sub-query covers %d refs, sub-plan %v", len(s.Q.Refs), s.Plan.Aliases())
		}
		if s.Latency <= 0 {
			t.Fatalf("sub-plan latency = %v", s.Latency)
		}
		if s.Latency >= tp.Latency {
			t.Fatalf("sub-plan latency %v not below root %v", s.Latency, tp.Latency)
		}
	}
	// Without PerOp the example passes through unchanged.
	bare := TrainPlan{Q: tp.Q, Plan: tp.Plan, Latency: tp.Latency}
	if got := ExpandSubPlans(bare); len(got) != 1 || got[0].Plan != tp.Plan {
		t.Fatalf("bare example expanded to %d samples", len(got))
	}
}

func TestTrainingSetSubPlans(t *testing.T) {
	w := buildWorld(t)
	tp := perOpPlan(t, w, pickJoinPlan(t, w))
	ctx := &Context{Cat: w.cat, Stats: w.cs, Plans: []TrainPlan{tp}, Seed: 5}
	if got := ctx.TrainingSet(); len(got) != 1 {
		t.Fatalf("SubPlans off: training set = %d", len(got))
	}
	ctx.SubPlans = true
	want := len(tp.Plan.Nodes())
	if got := ctx.TrainingSet(); len(got) != want {
		t.Fatalf("SubPlans on: training set = %d, want %d", len(got), want)
	}
	// The expanded corpus must still train a model end to end.
	cal := NewCalibrated()
	if err := cal.Train(ctx); err != nil {
		t.Fatal(err)
	}
}
