package costmodel

import (
	"math"

	"lqo/internal/data"
	"lqo/internal/plan"
)

// PlanFeaturizer maps whole physical plans to fixed-width vectors for the
// flat (non-recursive) learned cost models.
//
// Two modes:
//   - schema-aware: adds per-table scan presence — more accurate on the
//     training database;
//   - zero-shot [16]: only transferable features (operator counts,
//     cardinality aggregates, tree shape), enabling prediction on unseen
//     databases without retraining.
type PlanFeaturizer struct {
	ZeroShot bool
	Tables   []string
	tblIdx   map[string]int
}

// NewPlanFeaturizer builds a featurizer over cat's tables. For zero-shot
// mode, cat may be nil.
func NewPlanFeaturizer(cat *data.Catalog, zeroShot bool) *PlanFeaturizer {
	f := &PlanFeaturizer{ZeroShot: zeroShot, tblIdx: map[string]int{}}
	if cat != nil && !zeroShot {
		for _, tn := range cat.TableNames() {
			f.tblIdx[tn] = len(f.Tables)
			f.Tables = append(f.Tables, tn)
		}
	}
	return f
}

// transferableDim is the width of the database-independent feature block.
const transferableDim = 5*3 + 7

// Dim returns the feature-vector width.
func (f *PlanFeaturizer) Dim() int {
	if f.ZeroShot {
		return transferableDim
	}
	return transferableDim + len(f.Tables)
}

// Vector featurizes p. Per operator class: [count, Σ log(estCard),
// max log(estCard)]; plus tree shape and totals; plus (schema-aware only)
// per-table scan flags.
func (f *PlanFeaturizer) Vector(p *plan.Node) []float64 {
	v := make([]float64, f.Dim())
	ops := []plan.Op{plan.SeqScan, plan.IndexScan, plan.NestedLoopJoin, plan.HashJoin, plan.MergeJoin}
	opIdx := map[plan.Op]int{}
	for i, op := range ops {
		opIdx[op] = i
	}
	depth := 0
	var rec func(n *plan.Node, d int)
	totalLog := 0.0
	npreds := 0
	rec = func(n *plan.Node, d int) {
		if n == nil {
			return
		}
		if d > depth {
			depth = d
		}
		i := opIdx[n.Op]
		lc := math.Log1p(n.EstCard)
		v[i*3] += 1
		v[i*3+1] += lc / 20
		if lc/20 > v[i*3+2] {
			v[i*3+2] = lc / 20
		}
		totalLog += lc
		npreds += len(n.Preds)
		if n.IsLeaf() && !f.ZeroShot {
			if ti, ok := f.tblIdx[n.Table]; ok {
				v[transferableDim+ti] = 1
			}
		}
		rec(n.Left, d+1)
		rec(n.Right, d+1)
	}
	rec(p, 1)
	base := 15
	v[base] = float64(depth) / 10
	v[base+1] = float64(p.NumJoins()) / 10
	v[base+2] = totalLog / 100
	v[base+3] = float64(npreds) / 10
	v[base+4] = math.Log1p(p.EstCard) / 20
	v[base+5] = float64(len(p.Aliases())) / 10
	// The native cost model's own estimate (annotated by the optimizer) is
	// the strongest transferable prior; learned models correct it.
	v[base+6] = math.Log1p(p.EstCost) / 25
	return v
}

// NodeFeatureDim is the per-node feature width for the recursive models.
const NodeFeatureDim = 5 + 3

// NodeFeatures featurizes a single plan node for the tree-structured
// models: operator one-hot, log estimated cardinality, predicate count,
// leaf flag.
func NodeFeatures(n *plan.Node) []float64 {
	v := make([]float64, NodeFeatureDim)
	switch n.Op {
	case plan.SeqScan:
		v[0] = 1
	case plan.IndexScan:
		v[1] = 1
	case plan.NestedLoopJoin:
		v[2] = 1
	case plan.HashJoin:
		v[3] = 1
	case plan.MergeJoin:
		v[4] = 1
	}
	v[5] = math.Log1p(n.EstCard) / 20
	v[6] = float64(len(n.Preds)) / 5
	if n.IsLeaf() {
		v[7] = 1
	}
	return v
}
