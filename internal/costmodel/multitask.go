package costmodel

import (
	"fmt"
	"math"

	"lqo/internal/ml"
	"lqo/internal/plan"
	"lqo/internal/query"
)

// MultiTask is the unified transferable model line (MLMTF [66]): one
// shared tree-structured encoder is trained jointly for *two* tasks —
// latency prediction (cost model) and result-cardinality prediction —
// with separate small heads. The shared representation regularizes both
// heads, which is the paper's argument for multi-task pretraining across
// ML-enhanced DBMS components.
type MultiTask struct {
	EmbDim int // shared embedding width (default 16)
	Epochs int
	LR     float64
	// CardWeight scales the cardinality task's loss against the latency
	// task's (default 0.5).
	CardWeight float64

	combine  *ml.Net
	latHead  *ml.Net
	cardHead *ml.Net
}

// NewMultiTask returns an untrained multi-task model.
func NewMultiTask() *MultiTask {
	return &MultiTask{EmbDim: 16, Epochs: 60, LR: 1e-3, CardWeight: 0.5}
}

// Name implements Model.
func (m *MultiTask) Name() string { return "multitask" }

// Train implements Model. Cardinality labels come from the executed
// plans' root TrueCard annotations.
func (m *MultiTask) Train(ctx *Context) error {
	plans := ctx.TrainingSet()
	if len(plans) == 0 {
		return fmt.Errorf("costmodel: multitask needs executed plans")
	}
	rng := newRNG(ctx.Seed + 19)
	in := NodeFeatureDim + 2*m.EmbDim
	var err error
	if m.combine, err = ml.NewNet([]int{in, 32, m.EmbDim}, ml.ReLU, rng); err != nil {
		return err
	}
	if m.latHead, err = ml.NewNet([]int{m.EmbDim, 16, 1}, ml.ReLU, rng); err != nil {
		return err
	}
	if m.cardHead, err = ml.NewNet([]int{m.EmbDim, 16, 1}, ml.ReLU, rng); err != nil {
		return err
	}
	opt := ml.NewAdam(m.LR, m.combine, m.latHead, m.cardHead)

	idx := make([]int, len(plans))
	for i := range idx {
		idx[i] = i
	}
	const batch = 8
	for e := 0; e < m.Epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < len(idx); s += batch {
			end := s + batch
			if end > len(idx) {
				end = len(idx)
			}
			for _, i := range idx[s:end] {
				tp := plans[i]
				m.trainOne(tp.Plan, math.Log1p(tp.Latency), math.Log1p(tp.Plan.TrueCard))
			}
			opt.Step(end - s)
		}
	}
	return nil
}

// forwardNode mirrors TreeConv's recursive encoding with the shared trunk.
func (m *MultiTask) forwardNode(n *plan.Node) ([]float64, *treeCache) {
	tc := &treeCache{}
	leftEmb := make([]float64, m.EmbDim)
	rightEmb := make([]float64, m.EmbDim)
	if n.Left != nil {
		leftEmb, tc.left = m.forwardNode(n.Left)
	}
	if n.Right != nil {
		rightEmb, tc.right = m.forwardNode(n.Right)
	}
	in := make([]float64, 0, NodeFeatureDim+2*m.EmbDim)
	in = append(in, NodeFeatures(n)...)
	in = append(in, leftEmb...)
	in = append(in, rightEmb...)
	tc.cache = m.combine.ForwardCache(in)
	return tc.cache.Output(), tc
}

func (m *MultiTask) backwardNode(tc *treeCache, grad []float64) {
	gradIn := m.combine.Backward(tc.cache, grad)
	if tc.left != nil {
		m.backwardNode(tc.left, gradIn[NodeFeatureDim:NodeFeatureDim+m.EmbDim])
	}
	if tc.right != nil {
		m.backwardNode(tc.right, gradIn[NodeFeatureDim+m.EmbDim:])
	}
}

func (m *MultiTask) trainOne(p *plan.Node, latY, cardY float64) {
	emb, tc := m.forwardNode(p)
	lc := m.latHead.ForwardCache(emb)
	cc := m.cardHead.ForwardCache(emb)
	latDiff := lc.Output()[0] - latY
	cardDiff := cc.Output()[0] - cardY
	gradLat := m.latHead.Backward(lc, []float64{2 * latDiff})
	gradCard := m.cardHead.Backward(cc, []float64{2 * cardDiff * m.CardWeight})
	// Both task gradients flow into the shared trunk.
	grad := make([]float64, m.EmbDim)
	for i := range grad {
		grad[i] = gradLat[i] + gradCard[i]
	}
	m.backwardNode(tc, grad)
}

// Predict implements Model (the latency head).
func (m *MultiTask) Predict(q *query.Query, p *plan.Node) float64 {
	if m.latHead == nil {
		return 0
	}
	emb, _ := m.forwardNode(p)
	v := math.Expm1(m.latHead.Forward(emb)[0])
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// PredictCard returns the cardinality head's prediction for the plan's
// result size — the second task of the shared model.
func (m *MultiTask) PredictCard(p *plan.Node) float64 {
	if m.cardHead == nil {
		return 0
	}
	emb, _ := m.forwardNode(p)
	v := math.Expm1(m.cardHead.Forward(emb)[0])
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}
