package costmodel

import (
	"math"
	"testing"

	"lqo/internal/cardest"
	"lqo/internal/cost"
	"lqo/internal/data"
	"lqo/internal/datagen"
	"lqo/internal/exec"
	"lqo/internal/metrics"
	"lqo/internal/opt"
	"lqo/internal/plan"
	"lqo/internal/stats"
	"lqo/internal/workload"
)

type world struct {
	cat   *data.Catalog
	cs    *stats.CatalogStats
	ctx   *Context
	test  []TrainPlan
	base  *opt.Optimizer
	ex    *exec.Executor
	cache *exec.CardCache
}

var shared *world

// buildWorld executes hint-steered plans over a small StatsCEB catalog to
// produce (plan, latency) pairs split into train/test.
func buildWorld(t *testing.T) *world {
	t.Helper()
	if shared != nil {
		return shared
	}
	cat := datagen.StatsCEB(datagen.Config{Seed: 9, Scale: 0.05})
	cs := stats.CollectCatalog(cat, stats.Options{Seed: 9})
	ex := exec.New(cat)
	hist := cardest.NewHistogramEstimator()
	if err := hist.Train(&cardest.Context{Cat: cat, Stats: cs, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	base := opt.New(cat, cost.New(cs), hist)
	qs := workload.GenWorkload(cat, workload.Options{Seed: 9, Count: 40, MaxJoins: 3, MaxPreds: 3})
	var all []TrainPlan
	for _, q := range qs {
		plans, err := base.CandidatePlans(q, plan.BaoHintSets())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range plans {
			res, err := ex.Run(q, p)
			if err != nil {
				continue
			}
			all = append(all, TrainPlan{Q: q, Plan: p, Latency: res.Stats.WorkUnits})
		}
	}
	if len(all) < 40 {
		t.Fatalf("only %d executed plans", len(all))
	}
	split := len(all) * 3 / 4
	shared = &world{
		cat: cat, cs: cs, base: base, ex: ex,
		cache: exec.NewCardCache(ex),
		ctx:   &Context{Cat: cat, Stats: cs, Plans: all[:split], Seed: 11},
		test:  all[split:],
	}
	return shared
}

func TestRegistryAndByName(t *testing.T) {
	if len(Registry()) < 6 {
		t.Fatalf("registry = %d models", len(Registry()))
	}
	for _, inf := range Registry() {
		m := inf.Make()
		if m.Name() != inf.Name {
			t.Fatalf("%s name mismatch", inf.Name)
		}
	}
	if _, err := ByName("treeconv"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestAllModelsTrainAndPredict(t *testing.T) {
	w := buildWorld(t)
	for _, inf := range Registry() {
		inf := inf
		t.Run(inf.Name, func(t *testing.T) {
			m := inf.Make()
			if err := m.Train(w.ctx); err != nil {
				t.Fatal(err)
			}
			for _, tp := range w.test {
				v := m.Predict(tp.Q, tp.Plan)
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("prediction %v", v)
				}
			}
		})
	}
}

func TestLearnedModelsBeatTraditionalCorrelation(t *testing.T) {
	w := buildWorld(t)
	rho := func(m Model) float64 {
		if err := m.Train(w.ctx); err != nil {
			t.Fatal(err)
		}
		var pred, truth []float64
		for _, tp := range w.test {
			pred = append(pred, m.Predict(tp.Q, tp.Plan))
			truth = append(truth, tp.Latency)
		}
		return metrics.SpearmanRho(pred, truth)
	}
	trad := rho(NewTraditional())
	gbdt := rho(NewGBDTCost(false))
	if gbdt < 0.5 {
		t.Fatalf("gbdt-cost rank correlation too weak: %v", gbdt)
	}
	// The learned model should correlate at least as well as the
	// mis-calibrated traditional model on held-out plans (small slack for
	// sampling noise).
	if gbdt < trad-0.15 {
		t.Fatalf("gbdt %v much worse than traditional %v", gbdt, trad)
	}
}

func TestCalibratedImprovesScale(t *testing.T) {
	w := buildWorld(t)
	trad := NewTraditional()
	cal := NewCalibrated()
	if err := trad.Train(w.ctx); err != nil {
		t.Fatal(err)
	}
	if err := cal.Train(w.ctx); err != nil {
		t.Fatal(err)
	}
	// Calibration should reduce the geometric-mean absolute ratio error.
	ratioErr := func(m Model) float64 {
		var errs []float64
		for _, tp := range w.test {
			errs = append(errs, metrics.QError(m.Predict(tp.Q, tp.Plan), tp.Latency))
		}
		return metrics.GeoMean(errs)
	}
	te, ce := ratioErr(trad), ratioErr(cal)
	if ce > te*1.1 {
		t.Fatalf("calibration made scale worse: %v vs %v", ce, te)
	}
}

func TestZeroShotTransfers(t *testing.T) {
	w := buildWorld(t)
	zs := NewGBDTCost(true)
	if err := zs.Train(w.ctx); err != nil {
		t.Fatal(err)
	}
	// Build plans on a different database (JOBLite) and check predictions
	// are sane and rank-correlated.
	cat2 := datagen.JOBLite(datagen.Config{Seed: 21, Scale: 0.05})
	cs2 := stats.CollectCatalog(cat2, stats.Options{Seed: 21})
	ex2 := exec.New(cat2)
	hist := cardest.NewHistogramEstimator()
	if err := hist.Train(&cardest.Context{Cat: cat2, Stats: cs2, Seed: 21}); err != nil {
		t.Fatal(err)
	}
	base2 := opt.New(cat2, cost.New(cs2), hist)
	qs := workload.GenWorkload(cat2, workload.Options{Seed: 21, Count: 15, MaxJoins: 2, MaxPreds: 2})
	var pred, truth []float64
	for _, q := range qs {
		p, err := base2.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ex2.Run(q, p)
		if err != nil {
			continue
		}
		pred = append(pred, zs.Predict(q, p))
		truth = append(truth, res.Stats.WorkUnits)
	}
	if rho := metrics.SpearmanRho(pred, truth); rho < 0.3 {
		t.Fatalf("zero-shot transfer correlation = %v", rho)
	}
}

func TestTreeConvEmbedding(t *testing.T) {
	w := buildWorld(t)
	tc := NewTreeConv()
	tc.Epochs = 10
	if err := tc.Train(w.ctx); err != nil {
		t.Fatal(err)
	}
	emb := tc.Embed(w.test[0].Plan)
	if len(emb) != tc.EmbDim {
		t.Fatalf("embedding dim = %d", len(emb))
	}
	for _, v := range emb {
		if math.IsNaN(v) {
			t.Fatal("NaN in embedding")
		}
	}
}

func TestModelsRequirePlans(t *testing.T) {
	w := buildWorld(t)
	empty := &Context{Cat: w.cat, Stats: w.cs, Seed: 1}
	for _, name := range []string{"calibrated", "gbdt-cost", "mlp-cost", "treeconv"} {
		m, _ := ByName(name)
		if err := m.Train(empty); err == nil {
			t.Errorf("%s should require executed plans", name)
		}
	}
}

func TestConcurrentModelLearnsInterference(t *testing.T) {
	w := buildWorld(t)
	// Build interference samples from the world's plans.
	var samples []ConcurrentSample
	rng := newRNG(31)
	for i, tp := range w.ctx.Plans {
		var conc []float64
		for k := 0; k < rng.Intn(4); k++ {
			conc = append(conc, w.ctx.Plans[rng.Intn(len(w.ctx.Plans))].Latency)
		}
		total := 0.0
		for _, c := range conc {
			total += c
		}
		samples = append(samples, ConcurrentSample{
			Plan:       tp.Plan,
			OwnLatency: tp.Latency,
			Concurrent: conc,
			Observed:   SimulateConcurrentLatency(tp.Latency, total),
		})
		_ = i
	}
	m := NewConcurrentModel()
	if err := m.TrainConcurrent(w.ctx, samples); err != nil {
		t.Fatal(err)
	}
	// Prediction under heavy load should exceed prediction when idle for
	// the same plan.
	p := samples[0].Plan
	idle := m.PredictConcurrent(p, nil)
	busy := m.PredictConcurrent(p, []float64{SimCapacity, SimCapacity})
	if busy <= idle {
		t.Fatalf("interference not learned: idle %v, busy %v", idle, busy)
	}
}

func TestPlanFeaturizerShapes(t *testing.T) {
	w := buildWorld(t)
	for _, zs := range []bool{false, true} {
		f := NewPlanFeaturizer(w.cat, zs)
		for _, tp := range w.test {
			v := f.Vector(tp.Plan)
			if len(v) != f.Dim() {
				t.Fatalf("vector %d != dim %d", len(v), f.Dim())
			}
		}
	}
	nf := NodeFeatures(w.test[0].Plan)
	if len(nf) != NodeFeatureDim {
		t.Fatalf("node features = %d", len(nf))
	}
}

func TestMultiTaskBothHeads(t *testing.T) {
	w := buildWorld(t)
	m := NewMultiTask()
	m.Epochs = 30
	if err := m.Train(w.ctx); err != nil {
		t.Fatal(err)
	}
	var latPred, latTruth, cardPred, cardTruth []float64
	for _, tp := range w.test {
		latPred = append(latPred, m.Predict(tp.Q, tp.Plan))
		latTruth = append(latTruth, tp.Latency)
		cardPred = append(cardPred, m.PredictCard(tp.Plan))
		cardTruth = append(cardTruth, tp.Plan.TrueCard)
	}
	if rho := metrics.SpearmanRho(latPred, latTruth); rho < 0.4 {
		t.Fatalf("multitask latency rank correlation = %v", rho)
	}
	if rho := metrics.SpearmanRho(cardPred, cardTruth); rho < 0.4 {
		t.Fatalf("multitask cardinality rank correlation = %v", rho)
	}
}
