package costmodel

import (
	"fmt"
	"math"
	"math/rand"

	"lqo/internal/ml"
	"lqo/internal/plan"
)

// newRNG returns a deterministic RNG for the given seed.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ConcurrentModel is the concurrent-query performance predictor line
// (GPredictor [78], Prestroid [20], resource-aware models [31]): given a
// query's own plan and the set of plans running concurrently, predict its
// slowdown-adjusted latency.
//
// The workbench has no true concurrency in its deterministic executor, so
// interference is *simulated* by a capacity model — each concurrent work
// unit beyond the machine capacity stretches everyone proportionally —
// and the learned model must recover that relationship from featurized
// (own plan, concurrent load) pairs. This keeps the learning problem real
// (the model never sees the simulator's formula) while staying
// reproducible.
type ConcurrentModel struct {
	Epochs int
	LR     float64

	f   *PlanFeaturizer
	net *ml.Net
}

// NewConcurrentModel returns an untrained concurrent-latency model.
func NewConcurrentModel() *ConcurrentModel { return &ConcurrentModel{Epochs: 80, LR: 1e-3} }

// Name identifies the model.
func (m *ConcurrentModel) Name() string { return "concurrent" }

// SimCapacity is the simulated machine capacity in work units: concurrent
// demand beyond it stretches latency linearly.
const SimCapacity = 50000.0

// SimulateConcurrentLatency is the ground-truth interference model used
// to label training data: latency = own · (1 + totalConcurrent/capacity).
func SimulateConcurrentLatency(own, totalConcurrent float64) float64 {
	return own * (1 + totalConcurrent/SimCapacity)
}

// ConcurrentSample is one training example.
type ConcurrentSample struct {
	Plan       *plan.Node
	OwnLatency float64 // isolated latency (work units)
	Concurrent []float64
	Observed   float64 // latency under interference
}

// TrainConcurrent fits the model on interference samples.
func (m *ConcurrentModel) TrainConcurrent(ctx *Context, samples []ConcurrentSample) error {
	if len(samples) == 0 {
		return fmt.Errorf("costmodel: concurrent model needs samples")
	}
	m.f = NewPlanFeaturizer(ctx.Cat, false)
	rng := newRNG(ctx.Seed + 17)
	dim := m.f.Dim() + 3
	net, err := ml.NewNet([]int{dim, 32, 1}, ml.ReLU, rng)
	if err != nil {
		return err
	}
	m.net = net
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = m.vector(s.Plan, s.Concurrent)
		ys[i] = math.Log1p(s.Observed)
	}
	ml.TrainRegression(m.net, xs, ys, m.Epochs, 16, m.LR, rng)
	return nil
}

func (m *ConcurrentModel) vector(p *plan.Node, concurrent []float64) []float64 {
	base := m.f.Vector(p)
	total, max := 0.0, 0.0
	for _, c := range concurrent {
		total += c
		if c > max {
			max = c
		}
	}
	return append(base,
		math.Log1p(total)/20,
		math.Log1p(max)/20,
		float64(len(concurrent))/20,
	)
}

// PredictConcurrent returns the predicted latency of p when the given
// concurrent loads (work units) run alongside it.
func (m *ConcurrentModel) PredictConcurrent(p *plan.Node, concurrent []float64) float64 {
	if m.net == nil {
		return 0
	}
	v := math.Expm1(m.net.Forward(m.vector(p, concurrent))[0])
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}
