package costmodel

import (
	"math"
	"testing"

	"lqo/internal/data"
	"lqo/internal/ml"
	"lqo/internal/plan"
	"lqo/internal/query"
)

// TestTreeConvGradientCheck verifies the recursive backpropagation through
// the plan tree against numeric differentiation — the correctness core of
// the TreeConv architecture.
func TestTreeConvGradientCheck(t *testing.T) {
	m := NewTreeConv()
	m.EmbDim = 4
	rng := newRNG(7)
	in := NodeFeatureDim + 2*m.EmbDim
	var err error
	if m.combine, err = ml.NewNet([]int{in, 6, m.EmbDim}, ml.Tanh, rng); err != nil {
		t.Fatal(err)
	}
	if m.head, err = ml.NewNet([]int{m.EmbDim, 4, 1}, ml.Tanh, rng); err != nil {
		t.Fatal(err)
	}

	j := query.Join{LeftAlias: "a", LeftCol: "x", RightAlias: "b", RightCol: "y"}
	left := plan.NewScan(plan.SeqScan, "a", "a", nil)
	left.EstCard = 100
	right := plan.NewScan(plan.IndexScan, "b", "b", []query.Pred{{Alias: "b", Column: "v", Op: query.Eq, Val: data.IntVal(1)}})
	right.EstCard = 10
	root := plan.NewJoin(plan.HashJoin, left, right, []query.Join{j})
	root.EstCard = 50

	loss := func() float64 {
		emb, _ := m.forwardNode(root)
		out := m.head.Forward(emb)[0]
		d := out - 3.0
		return d * d
	}

	// Analytic gradients.
	m.combine.ZeroGrad()
	m.head.ZeroGrad()
	m.trainOne(root, 3.0)

	check := func(name string, w, dw []float64) {
		t.Helper()
		const eps = 1e-6
		for _, i := range []int{0, len(w) / 2, len(w) - 1} {
			orig := w[i]
			w[i] = orig + eps
			up := loss()
			w[i] = orig - eps
			down := loss()
			w[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-dw[i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, dw[i], numeric)
			}
		}
	}
	check("combine.W0", m.combine.Layers[0].W, gradW(m.combine, 0))
	check("combine.W1", m.combine.Layers[1].W, gradW(m.combine, 1))
	check("head.W0", m.head.Layers[0].W, gradW(m.head, 0))
}

// gradW exposes a layer's accumulated weight gradient for checking.
func gradW(n *ml.Net, layer int) []float64 {
	return n.Layers[layer].GradW()
}
