// Package costmodel implements the learned cost-model taxonomy of the
// tutorial's Section 2.1.2: plan-featurized regressors ([39]'s plan-level
// models via MLP and GBDT), a recursive tree-structured network (the
// TreeConv/Tree-LSTM line [39, 51]), a calibrated cost model (BASE [5]), a
// zero-shot transferable variant [16], and a concurrent-query model
// (GPredictor line [78, 20, 31]) — all behind one Model interface and all
// trained on (plan, measured latency) pairs from the workbench executor.
package costmodel

import (
	"fmt"
	"math"
	"time"

	"lqo/internal/cost"
	"lqo/internal/data"
	"lqo/internal/plan"
	"lqo/internal/query"
	"lqo/internal/stats"
)

// TrainPlan is one training example: an executed physical plan (annotated
// with EstCard per node) and its measured latency in executor work units.
type TrainPlan struct {
	Q       *query.Query
	Plan    *plan.Node
	Latency float64
	// PerOp holds per-operator actuals from the executor's telemetry, when
	// the collector ran with EXPLAIN ANALYZE-level instrumentation. Optional:
	// models that only need the root label ignore it; sub-plan expansion
	// (Neo-style training on sub-plan latencies) requires it.
	PerOp []OpActual
}

// OpActual is one operator's measured execution evidence, the per-node
// training feature the tutorial's diagnosis line calls for: what the
// operator actually produced and what it actually cost.
type OpActual struct {
	Node        *plan.Node    // the plan node (aliases into TrainPlan.Plan)
	Rows        float64       // actual output cardinality
	Work        float64       // work units charged to this operator alone
	SubtreeWork float64       // work units of the whole subtree — the sub-plan latency label
	Wall        time.Duration // wall-clock inside the operator
}

// ExpandSubPlans turns one per-operator-instrumented example into a
// sample per sub-plan: the root example plus, for every recorded
// operator below the root, the sub-plan with its subtree work as the
// latency label. This is how Neo [PAPERS.md] multiplies its training
// corpus — one execution labels every sub-plan, not just the query.
// Examples without PerOp pass through unchanged.
func ExpandSubPlans(tp TrainPlan) []TrainPlan {
	out := []TrainPlan{tp}
	for _, oa := range tp.PerOp {
		if oa.Node == nil || oa.Node == tp.Plan {
			continue
		}
		out = append(out, TrainPlan{
			Q:       oa.Node.Subquery(tp.Q),
			Plan:    oa.Node,
			Latency: oa.SubtreeWork,
		})
	}
	return out
}

// Context carries training inputs for learned cost models.
type Context struct {
	Cat   *data.Catalog
	Stats *stats.CatalogStats
	Plans []TrainPlan
	Seed  int64
	// SubPlans, when set, trains on every recorded sub-plan (via
	// ExpandSubPlans) instead of only root plans. Requires the collector
	// to have filled TrainPlan.PerOp.
	SubPlans bool
}

// TrainingSet returns the training corpus models should fit on: Plans
// as-is, or expanded to sub-plan samples when SubPlans is set.
func (c *Context) TrainingSet() []TrainPlan {
	if !c.SubPlans {
		return c.Plans
	}
	var out []TrainPlan
	for _, tp := range c.Plans {
		out = append(out, ExpandSubPlans(tp)...)
	}
	return out
}

// Model predicts the latency (work units) of a physical plan.
type Model interface {
	// Name identifies the model.
	Name() string
	// Train fits the model on executed plans.
	Train(ctx *Context) error
	// Predict returns the predicted latency of a plan whose EstCard
	// annotations are filled. Never negative or NaN.
	Predict(q *query.Query, p *plan.Node) float64
}

// Info describes a registered cost model.
type Info struct {
	Name string
	Make func() Model
}

// Registry lists every cost model the workbench ships.
func Registry() []Info {
	return []Info{
		{"traditional", func() Model { return NewTraditional() }},
		{"calibrated", func() Model { return NewCalibrated() }},
		{"gbdt-cost", func() Model { return NewGBDTCost(false) }},
		{"zeroshot", func() Model { return NewGBDTCost(true) }},
		{"mlp-cost", func() Model { return NewMLPCost() }},
		{"treeconv", func() Model { return NewTreeConv() }},
		{"multitask", func() Model { return NewMultiTask() }},
	}
}

// ByName constructs a registered model, or errors.
func ByName(name string) (Model, error) {
	for _, inf := range Registry() {
		if inf.Name == name {
			return inf.Make(), nil
		}
	}
	return nil, fmt.Errorf("costmodel: unknown model %q", name)
}

// Traditional wraps the rule-based cost model as a latency predictor —
// the baseline every learned model is compared against in E3.
type Traditional struct {
	cm *cost.Model
}

// NewTraditional returns the rule-based baseline.
func NewTraditional() *Traditional { return &Traditional{} }

// Name implements Model.
func (m *Traditional) Name() string { return "traditional" }

// Train records statistics; nothing is learned.
func (m *Traditional) Train(ctx *Context) error {
	m.cm = cost.New(ctx.Stats)
	return nil
}

// Predict implements Model.
func (m *Traditional) Predict(q *query.Query, p *plan.Node) float64 {
	c := m.cm.PlanCost(p.Clone())
	if c < 0 || math.IsNaN(c) {
		return 0
	}
	return c
}

// Calibrated is the BASE-style model [5]: the traditional cost has the
// right ordering but wrong scale, so learn a monotone log-linear mapping
// cost → latency from executed plans.
type Calibrated struct {
	cm   *cost.Model
	a, b float64 // log latency ≈ a·log cost + b
}

// NewCalibrated returns an untrained calibrated cost model.
func NewCalibrated() *Calibrated { return &Calibrated{} }

// Name implements Model.
func (m *Calibrated) Name() string { return "calibrated" }

// Train fits the log-linear calibration by least squares.
func (m *Calibrated) Train(ctx *Context) error {
	m.cm = cost.New(ctx.Stats)
	plans := ctx.TrainingSet()
	if len(plans) == 0 {
		return fmt.Errorf("costmodel: calibrated model needs executed plans")
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(plans))
	for _, tp := range plans {
		x := math.Log1p(m.cm.PlanCost(tp.Plan.Clone()))
		y := math.Log1p(tp.Latency)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den <= 1e-12 {
		m.a, m.b = 1, 0
		return nil
	}
	m.a = (n*sxy - sx*sy) / den
	m.b = (sy - m.a*sx) / n
	return nil
}

// Predict implements Model.
func (m *Calibrated) Predict(q *query.Query, p *plan.Node) float64 {
	x := math.Log1p(m.cm.PlanCost(p.Clone()))
	v := math.Expm1(m.a*x + m.b)
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}
