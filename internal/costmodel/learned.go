package costmodel

import (
	"fmt"
	"math"

	"lqo/internal/ml"
	"lqo/internal/plan"
	"lqo/internal/query"
)

// GBDTCost regresses log-latency on flat plan features with boosted trees.
// With zeroShot=true it restricts itself to transferable features, giving
// the zero-shot cost model of [16].
type GBDTCost struct {
	zeroShot bool
	f        *PlanFeaturizer
	model    *ml.GBDT
}

// NewGBDTCost returns an untrained flat-feature cost model.
func NewGBDTCost(zeroShot bool) *GBDTCost { return &GBDTCost{zeroShot: zeroShot} }

// Name implements Model.
func (m *GBDTCost) Name() string {
	if m.zeroShot {
		return "zeroshot"
	}
	return "gbdt-cost"
}

// Train implements Model.
func (m *GBDTCost) Train(ctx *Context) error {
	plans := ctx.TrainingSet()
	if len(plans) == 0 {
		return fmt.Errorf("costmodel: %s needs executed plans", m.Name())
	}
	m.f = NewPlanFeaturizer(ctx.Cat, m.zeroShot)
	xs := make([][]float64, len(plans))
	ys := make([]float64, len(plans))
	for i, tp := range plans {
		xs[i] = m.f.Vector(tp.Plan)
		ys[i] = math.Log1p(tp.Latency)
	}
	m.model = ml.FitGBDT(xs, ys, ml.GBDTOptions{Rounds: 60, LearnRate: 0.15, Tree: ml.TreeOptions{MaxDepth: 5}})
	return nil
}

// Predict implements Model.
func (m *GBDTCost) Predict(q *query.Query, p *plan.Node) float64 {
	if m.model == nil {
		return 0
	}
	v := math.Expm1(m.model.Predict(m.f.Vector(p)))
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// MLPCost is the fully connected plan-cost network of [39]'s flat variant.
type MLPCost struct {
	Epochs int
	LR     float64

	f   *PlanFeaturizer
	net *ml.Net
}

// NewMLPCost returns an untrained MLP cost model.
func NewMLPCost() *MLPCost { return &MLPCost{Epochs: 80, LR: 1e-3} }

// Name implements Model.
func (m *MLPCost) Name() string { return "mlp-cost" }

// Train implements Model.
func (m *MLPCost) Train(ctx *Context) error {
	plans := ctx.TrainingSet()
	if len(plans) == 0 {
		return fmt.Errorf("costmodel: mlp-cost needs executed plans")
	}
	m.f = NewPlanFeaturizer(ctx.Cat, false)
	rng := newRNG(ctx.Seed + 11)
	net, err := ml.NewNet([]int{m.f.Dim(), 48, 24, 1}, ml.ReLU, rng)
	if err != nil {
		return err
	}
	m.net = net
	xs := make([][]float64, len(plans))
	ys := make([]float64, len(plans))
	for i, tp := range plans {
		xs[i] = m.f.Vector(tp.Plan)
		ys[i] = math.Log1p(tp.Latency)
	}
	ml.TrainRegression(m.net, xs, ys, m.Epochs, 16, m.LR, rng)
	return nil
}

// Predict implements Model.
func (m *MLPCost) Predict(q *query.Query, p *plan.Node) float64 {
	if m.net == nil {
		return 0
	}
	v := math.Expm1(m.net.Forward(m.f.Vector(p))[0])
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// TreeConv is the recursive tree-structured cost model of the
// TreeConv/Tree-LSTM line [39, 51, 41]: each node's embedding is computed
// by a shared combiner network over [node features ‖ left child embedding
// ‖ right child embedding] (zeros at leaves), and a head network maps the
// root embedding to log-latency. Gradients flow through the recursion.
type TreeConv struct {
	EmbDim int // embedding width (default 16)
	Epochs int
	LR     float64

	combine *ml.Net
	head    *ml.Net
}

// NewTreeConv returns an untrained tree-structured cost model.
func NewTreeConv() *TreeConv { return &TreeConv{EmbDim: 16, Epochs: 60, LR: 1e-3} }

// Name implements Model.
func (m *TreeConv) Name() string { return "treeconv" }

// Train implements Model.
func (m *TreeConv) Train(ctx *Context) error {
	plans := ctx.TrainingSet()
	if len(plans) == 0 {
		return fmt.Errorf("costmodel: treeconv needs executed plans")
	}
	rng := newRNG(ctx.Seed + 13)
	in := NodeFeatureDim + 2*m.EmbDim
	var err error
	if m.combine, err = ml.NewNet([]int{in, 32, m.EmbDim}, ml.ReLU, rng); err != nil {
		return err
	}
	if m.head, err = ml.NewNet([]int{m.EmbDim, 16, 1}, ml.ReLU, rng); err != nil {
		return err
	}
	opt := ml.NewAdam(m.LR, m.combine, m.head)

	idx := make([]int, len(plans))
	for i := range idx {
		idx[i] = i
	}
	const batch = 8
	for e := 0; e < m.Epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < len(idx); s += batch {
			end := s + batch
			if end > len(idx) {
				end = len(idx)
			}
			for _, i := range idx[s:end] {
				tp := plans[i]
				m.trainOne(tp.Plan, math.Log1p(tp.Latency))
			}
			opt.Step(end - s)
		}
	}
	return nil
}

// treeCache stores the forward state of one plan node for backprop.
type treeCache struct {
	cache       ml.Cache
	left, right *treeCache
}

func (m *TreeConv) forwardNode(n *plan.Node) ([]float64, *treeCache) {
	tc := &treeCache{}
	leftEmb := make([]float64, m.EmbDim)
	rightEmb := make([]float64, m.EmbDim)
	if n.Left != nil {
		leftEmb, tc.left = m.forwardNode(n.Left)
	}
	if n.Right != nil {
		rightEmb, tc.right = m.forwardNode(n.Right)
	}
	in := make([]float64, 0, NodeFeatureDim+2*m.EmbDim)
	in = append(in, NodeFeatures(n)...)
	in = append(in, leftEmb...)
	in = append(in, rightEmb...)
	tc.cache = m.combine.ForwardCache(in)
	return tc.cache.Output(), tc
}

func (m *TreeConv) backwardNode(tc *treeCache, grad []float64) {
	gradIn := m.combine.Backward(tc.cache, grad)
	if tc.left != nil {
		m.backwardNode(tc.left, gradIn[NodeFeatureDim:NodeFeatureDim+m.EmbDim])
	}
	if tc.right != nil {
		m.backwardNode(tc.right, gradIn[NodeFeatureDim+m.EmbDim:])
	}
}

func (m *TreeConv) trainOne(p *plan.Node, y float64) {
	emb, tc := m.forwardNode(p)
	hc := m.head.ForwardCache(emb)
	diff := hc.Output()[0] - y
	gradEmb := m.head.Backward(hc, []float64{2 * diff})
	m.backwardNode(tc, gradEmb)
}

// Predict implements Model.
func (m *TreeConv) Predict(q *query.Query, p *plan.Node) float64 {
	if m.head == nil {
		return 0
	}
	emb, _ := m.forwardNode(p)
	v := math.Expm1(m.head.Forward(emb)[0])
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// Embed returns the root embedding of a plan — Saturn/QueryFormer-style
// plan representations reusable for downstream tasks [34, 76].
func (m *TreeConv) Embed(p *plan.Node) []float64 {
	if m.combine == nil {
		return nil
	}
	emb, _ := m.forwardNode(p)
	return emb
}
