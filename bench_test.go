// Package lqo's root benchmarks regenerate every experiment table (E1–E8,
// one benchmark per table — see DESIGN.md's experiment index) plus
// micro-benchmarks for the hot paths. Run:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark reports the table once (on the first
// iteration) and then times full regeneration.
package lqo_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"lqo/internal/bench"
	"lqo/internal/cardest"
	"lqo/internal/exec"
	"lqo/internal/plan"
	"lqo/internal/query"
	"lqo/internal/workload"
)

var (
	envOnce sync.Once
	envVal  *bench.Env
	envErr  error
)

// sharedEnv builds one quick-scale environment reused by the per-table
// benchmarks (E2 gets a private env because it mutates the catalog).
func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = bench.NewEnv("stats", bench.QuickScale(), 42)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

var printed sync.Map

func report(b *testing.B, rep *bench.Report, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if _, dup := printed.LoadOrStore(rep.ID, true); !dup {
		b.Log("\n" + rep.String())
	}
}

func BenchmarkE1CardinalityQError(b *testing.B) {
	env := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		rep, err := bench.E1Cardinality(env)
		report(b, rep, err)
	}
}

func BenchmarkE2Drift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := bench.NewEnv("stats", bench.QuickScale(), 42)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := bench.E2Drift(env, []string{"histogram", "gbdt", "naru", "spn", "factorjoin", "uae"})
		report(b, rep, err)
	}
}

func BenchmarkE3CostModel(b *testing.B) {
	env := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		rep, err := bench.E3CostModel(context.Background(), env)
		report(b, rep, err)
	}
}

func BenchmarkE4JoinOrder(b *testing.B) {
	env := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		rep, err := bench.E4JoinOrder(env, []int{3, 4, 5, 6, 8, 10}, 8)
		report(b, rep, err)
	}
}

func BenchmarkE5EndToEnd(b *testing.B) {
	env := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		rep, err := bench.E5EndToEnd(env)
		report(b, rep, err)
	}
}

func BenchmarkE6Eraser(b *testing.B) {
	env := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		rep, err := bench.E6Eraser(env)
		report(b, rep, err)
	}
}

func BenchmarkE7PilotScope(b *testing.B) {
	env := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		rep, err := bench.E7PilotScope(context.Background(), env)
		report(b, rep, err)
	}
}

func BenchmarkE8Ablations(b *testing.B) {
	env := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		rep, err := bench.E8Ablations(context.Background(), env)
		report(b, rep, err)
	}
}

func BenchmarkE9Throughput(b *testing.B) {
	env := sharedEnv(b)
	for i := 0; i < b.N; i++ {
		rep, err := bench.E9Throughput(env, []int{1, 4, 8}, 0, 1, 0)
		report(b, rep, err)
	}
}

// --- Micro-benchmarks for the hot paths the experiments exercise ---

func BenchmarkOptimizeDP4Way(b *testing.B) {
	env := sharedEnv(b)
	var q4 = pickQuery(b, env, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Base.Optimize(q4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteHashJoinPlan(b *testing.B) {
	env := sharedEnv(b)
	q := pickQuery(b, env, 3)
	p, err := exec.CanonicalPlan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Ex.Run(q, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateHistogram(b *testing.B) {
	env := sharedEnv(b)
	benchmarkEstimator(b, env, "histogram")
}

func BenchmarkEstimateMSCN(b *testing.B) {
	env := sharedEnv(b)
	benchmarkEstimator(b, env, "mscn")
}

func BenchmarkEstimateSPN(b *testing.B) {
	env := sharedEnv(b)
	benchmarkEstimator(b, env, "spn")
}

func BenchmarkEstimateFactorJoin(b *testing.B) {
	env := sharedEnv(b)
	benchmarkEstimator(b, env, "factorjoin")
}

func benchmarkEstimator(b *testing.B, env *bench.Env, name string) {
	b.Helper()
	est, err := cardest.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := est.Train(env.CardestContext()); err != nil {
		b.Fatal(err)
	}
	qs := make([]*workloadQuery, 0, len(env.Test))
	for _, l := range env.Test {
		qs = append(qs, &workloadQuery{l})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := qs[i%len(qs)].l
		_ = est.Estimate(l.Q)
	}
}

type workloadQuery struct{ l workload.Labeled }

func BenchmarkCandidatePlans(b *testing.B) {
	env := sharedEnv(b)
	q := pickQuery(b, env, 3)
	hints := plan.BaoHintSets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Base.CandidatePlans(q, hints); err != nil {
			b.Fatal(err)
		}
	}
}

func pickQuery(b *testing.B, env *bench.Env, tables int) *query.Query {
	b.Helper()
	for _, l := range env.Test {
		if len(l.Q.Refs) == tables {
			return l.Q
		}
	}
	for _, l := range env.Train {
		if len(l.Q.Refs) == tables {
			return l.Q
		}
	}
	b.Skip(fmt.Sprintf("no %d-table query in workload", tables))
	return nil
}
