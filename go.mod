module lqo

go 1.22
