// Command lqo-demo walks through the PilotScope demonstration of the
// tutorial's Section 3.2, step by step: (1) stand up the "database" with
// middleware attached, (2) show the driver programming model, (3) deploy
// the learned-cardinality and Bao/Lero drivers, (4) compare native vs
// driven execution on a benchmark workload.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"lqo/internal/bench"
	"lqo/internal/cardest"
	"lqo/internal/datagen"
	"lqo/internal/metrics"
	"lqo/internal/pilotscope"
	"lqo/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 7, "random seed")
	scale := flag.Float64("scale", 0.1, "data scale factor")
	flag.Parse()

	fmt.Println("─── Step 1: install the database with PilotScope attached ───")
	cat := datagen.StatsCEB(datagen.Config{Seed: *seed, Scale: *scale})
	eng, err := pilotscope.NewEngine(cat, *seed)
	check(err)
	console := pilotscope.NewConsole(eng, *seed)
	fmt.Printf("engine up: %d tables, %d rows total\n\n", len(cat.TableNames()), cat.TotalRows())

	qs := workload.GenWorkload(cat, workload.Options{Seed: *seed, Count: 80, MaxJoins: 3, MaxPreds: 3})
	var sqls []string
	for _, q := range qs {
		sqls = append(sqls, q.SQL())
	}
	train, test := sqls[:50], sqls[50:]
	console.SetWorkload(train)

	fmt.Println("─── Step 2: the driver programming model ───")
	fmt.Println("a driver overrides Init() (collect data via pull, train) and")
	fmt.Println("Algo() (steer the session via push); everything else is middleware.")
	for _, d := range []pilotscope.Driver{
		pilotscope.NewCardEstDriver(cardest.NewMSCN()),
		pilotscope.NewBaoDriver(),
		pilotscope.NewLeroDriver(),
	} {
		console.RegisterDriver(d)
		fmt.Printf("registered driver %-16s injection=%v\n", d.Name(), d.Injection())
	}
	fmt.Println()

	fmt.Println("─── Step 3: run the workload natively ───")
	check(console.StopTask())
	natLat := runAll(console, test)
	fmt.Printf("native total work: %s\n\n", bench.F(sum(natLat)))

	fmt.Println("─── Step 4: deploy each driver and rerun (transparent to the user) ───")
	for _, name := range console.Drivers() {
		check(console.StartTask(context.Background(), name))
		lats := runAll(console, test)
		var rel []float64
		for i := range lats {
			rel = append(rel, lats[i]/natLat[i])
		}
		fmt.Printf("%-18s total=%-10s GMRL=%-6s (1.00 = native)\n",
			name, bench.F(sum(lats)), bench.F(metrics.GeoMean(rel)))
		check(console.StopTask())
	}
	fmt.Println("\ndone — see `lqo-bench -exp E7` for the full middleware table.")
}

func runAll(console *pilotscope.Console, sqls []string) []float64 {
	lats := make([]float64, len(sqls))
	for i, sql := range sqls {
		res, err := console.ExecuteSQL(context.Background(), sql)
		check(err)
		lats[i] = res.Latency
	}
	return lats
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lqo-demo:", err)
		os.Exit(1)
	}
}
