// Command lqo-bench regenerates the workbench's experiment tables E1–E8
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	lqo-bench -exp all                 # every experiment, quick scale
//	lqo-bench -exp E1,E3 -dataset job  # selected experiments
//	lqo-bench -exp E5 -scale full      # DESIGN.md-scale run (slow)
//	lqo-bench -exp E9 -parallel 8      # concurrent throughput, 1 vs 8 goroutines
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lqo/internal/bench"
)

func main() {
	var (
		expFlag     = flag.String("exp", "all", "comma-separated experiment ids (E1..E9) or 'all'")
		datasetFlag = flag.String("dataset", "stats", "dataset: stats | job | tpch")
		scaleFlag   = flag.String("scale", "quick", "scale: quick | full")
		seedFlag    = flag.Int64("seed", 42, "master random seed")
		parallel    = flag.Int("parallel", 8, "E9 goroutine count, compared against a serial run")
		execWorkers = flag.Int("exec-workers", 0, "E9 intra-query executor workers per goroutine (0 = serial operators)")
		repeatFlag  = flag.Int("repeat", 3, "E9 passes over the workload per measurement")
	)
	flag.Parse()

	sc := bench.QuickScale()
	if *scaleFlag == "full" {
		sc = bench.FullScale()
	}
	want := map[string]bool{}
	if *expFlag == "all" {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"} {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	type runner struct {
		id  string
		run func(env *bench.Env) (*bench.Report, error)
	}
	runners := []runner{
		{"E1", bench.E1Cardinality},
		{"E2", func(env *bench.Env) (*bench.Report, error) {
			return bench.E2Drift(env, []string{"histogram", "gbdt", "mscn", "naru", "spn", "factorjoin", "uae"})
		}},
		{"E3", bench.E3CostModel},
		{"E4", func(env *bench.Env) (*bench.Report, error) {
			return bench.E4JoinOrder(env, []int{3, 4, 5, 6, 8, 10}, 8)
		}},
		{"E5", bench.E5EndToEnd},
		{"E6", bench.E6Eraser},
		{"E7", bench.E7PilotScope},
		{"E8", bench.E8Ablations},
		{"E9", func(env *bench.Env) (*bench.Report, error) {
			gs := []int{1}
			if *parallel > 1 {
				gs = append(gs, *parallel)
			}
			return bench.E9Throughput(env, gs, *execWorkers, *repeatFlag)
		}},
	}

	for _, r := range runners {
		if !want[r.id] {
			continue
		}
		// Fresh environment per experiment: E2 mutates the catalog (drift)
		// and models must never leak across experiments.
		env, err := bench.NewEnv(*datasetFlag, sc, *seedFlag)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		rep, err := r.run(env)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.id, err))
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s completed in %s)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lqo-bench:", err)
	os.Exit(1)
}
