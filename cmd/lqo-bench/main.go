// Command lqo-bench regenerates the workbench's experiment tables E1–E10
// and E13–E17 (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	lqo-bench -exp all                 # every experiment, quick scale
//	lqo-bench -exp E1,E3 -dataset job  # selected experiments
//	lqo-bench -exp E5 -scale full      # DESIGN.md-scale run (slow)
//	lqo-bench -exp E9 -parallel 8      # concurrent throughput, 1 vs 8 goroutines
//	lqo-bench -exp E13                 # vectorized kernels vs scalar filter path
//	lqo-bench -exp E14 -load-qps 500   # open-loop sustained load through the serving layer
//	lqo-bench -exp E15 -adapt-stages 4 # closed-loop adaptation under staged drift
//	lqo-bench -exp E16 -shards 1,2,4   # sharded scatter-gather vs unsharded reference
//	lqo-bench -exp E17 -workers 1,8    # pooled vs per-run allocation, steady state
//	lqo-bench -exp E5 -novec           # any experiment with vectorization disabled
//	lqo-bench -exp E5 -nopool          # any experiment with buffer pooling disabled
//	lqo-bench -chaos                   # E10 guardrails under fault injection
//	lqo-bench -chaos -chaos-rates 0,0.25 -chaos-timeout 2ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lqo/internal/bench"
)

func main() {
	var (
		expFlag     = flag.String("exp", "all", "comma-separated experiment ids (E1..E9) or 'all'")
		datasetFlag = flag.String("dataset", "stats", "dataset: stats | job | tpch")
		scaleFlag   = flag.String("scale", "quick", "scale: quick | full")
		seedFlag    = flag.Int64("seed", 42, "master random seed")
		parallel    = flag.Int("parallel", 8, "E9 goroutine count, compared against a serial run")
		execWorkers = flag.Int("exec-workers", 0, "E9 intra-query executor workers per goroutine (0 = serial operators)")
		repeatFlag  = flag.Int("repeat", 3, "E9 passes over the workload per measurement")
		batchFlag   = flag.Int("batch", 0, "E9 executor batch size in tuples (0 = exec default); results are identical at every setting")
		novecFlag   = flag.Bool("novec", false, "disable vectorized kernels and zone-map pruning on the shared executor; results are identical, only wall clock changes (E13 always runs its own scalar-vs-vectorized A/B)")
		nopoolFlag  = flag.Bool("nopool", false, "disable batch/selection-vector pooling on the shared executor; results are identical, only allocation behaviour changes (E17 always runs its own pooled-vs-nopool A/B)")

		loadQPS      = flag.String("load-qps", "200,1000", "E14 comma-separated target arrival rates")
		loadDur      = flag.Duration("load-dur", time.Second, "E14 measured duration per rate level")
		loadDistinct = flag.Int("load-distinct", 8, "E14 distinct queries in the repeated mix")
		loadWorkers  = flag.Int("load-workers", 0, "E14 serving goroutines (0 = GOMAXPROCS)")
		loadSLO      = flag.Float64("load-slo", 50, "E14 end-to-end latency SLO in milliseconds")

		adaptStages   = flag.Int("adapt-stages", 3, "E15 drift stages after the clean stage")
		adaptTraffic  = flag.Int("adapt-traffic", 40, "E15 served queries per stage")
		adaptHoldout  = flag.Int("adapt-holdout", 12, "E15 gate holdout size per stage")
		adaptFraction = flag.Float64("adapt-fraction", 0.6, "E15 appended-row fraction per drift stage")

		shardsFlag = flag.String("shards", "1,2,4", "E16 comma-separated shard fan-outs (1 = unsharded baseline)")

		workersFlag = flag.String("workers", "1,8", "E17 comma-separated executor worker counts")

		chaosFlag    = flag.Bool("chaos", false, "shorthand for -exp E10: guardrail runtime under fault injection")
		chaosRates   = flag.String("chaos-rates", "0,0.01,0.10", "E10 comma-separated fault rates in [0,1]")
		chaosTimeout = flag.Duration("chaos-timeout", 5*time.Millisecond, "E10 per-decision budget for the learned planner")
		chaosHang    = flag.Duration("chaos-hang", 20*time.Millisecond, "E10 injected hang duration (finite; > timeout)")
	)
	flag.Parse()

	sc := bench.QuickScale()
	if *scaleFlag == "full" {
		sc = bench.FullScale()
	}
	want := map[string]bool{}
	switch {
	case *chaosFlag:
		want["E10"] = true
	case *expFlag == "all":
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E13", "E14", "E15", "E16", "E17"} {
			want[id] = true
		}
	default:
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	var rates []float64
	for _, s := range strings.Split(*chaosRates, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(s, "%g", &v); err != nil || v < 0 || v > 1 {
			fatal(fmt.Errorf("bad -chaos-rates entry %q", s))
		}
		rates = append(rates, v)
	}

	// The root context of the whole run. Context-aware experiments
	// (middleware, chaos, plan collection) thread it through to every
	// query; a future -timeout flag or signal handler only needs to
	// wrap it here.
	ctx := context.Background()

	type runner struct {
		id  string
		run func(ctx context.Context, env *bench.Env) (*bench.Report, error)
	}
	runners := []runner{
		{"E1", func(_ context.Context, env *bench.Env) (*bench.Report, error) {
			return bench.E1Cardinality(env)
		}},
		{"E2", func(_ context.Context, env *bench.Env) (*bench.Report, error) {
			return bench.E2Drift(env, []string{"histogram", "gbdt", "mscn", "naru", "spn", "factorjoin", "uae"})
		}},
		{"E3", bench.E3CostModel},
		{"E4", func(_ context.Context, env *bench.Env) (*bench.Report, error) {
			return bench.E4JoinOrder(env, []int{3, 4, 5, 6, 8, 10}, 8)
		}},
		{"E5", func(_ context.Context, env *bench.Env) (*bench.Report, error) {
			return bench.E5EndToEnd(env)
		}},
		{"E6", func(_ context.Context, env *bench.Env) (*bench.Report, error) {
			return bench.E6Eraser(env)
		}},
		{"E7", bench.E7PilotScope},
		{"E8", bench.E8Ablations},
		{"E9", func(_ context.Context, env *bench.Env) (*bench.Report, error) {
			gs := []int{1}
			if *parallel > 1 {
				gs = append(gs, *parallel)
			}
			return bench.E9Throughput(env, gs, *execWorkers, *repeatFlag, *batchFlag)
		}},
		{"E10", func(ctx context.Context, env *bench.Env) (*bench.Report, error) {
			return bench.E10Chaos(ctx, env, bench.ChaosOptions{Rates: rates, Timeout: *chaosTimeout, Hang: *chaosHang})
		}},
		{"E13", func(ctx context.Context, env *bench.Env) (*bench.Report, error) {
			return bench.E13Vectorized(ctx, env, *repeatFlag)
		}},
		{"E14", func(ctx context.Context, env *bench.Env) (*bench.Report, error) {
			var levels []float64
			for _, s := range strings.Split(*loadQPS, ",") {
				s = strings.TrimSpace(s)
				if s == "" {
					continue
				}
				var v float64
				if _, err := fmt.Sscanf(s, "%g", &v); err != nil || v <= 0 {
					return nil, fmt.Errorf("bad -load-qps entry %q", s)
				}
				levels = append(levels, v)
			}
			return bench.E14SustainedLoad(ctx, env, bench.LoadOptions{
				QPSLevels:  levels,
				Duration:   *loadDur,
				Distinct:   *loadDistinct,
				Goroutines: *loadWorkers,
				SLOms:      *loadSLO,
			})
		}},
		{"E15", func(ctx context.Context, env *bench.Env) (*bench.Report, error) {
			return bench.E15Adaptation(ctx, env, bench.AdaptOptions{
				Stages:   *adaptStages,
				Traffic:  *adaptTraffic,
				Holdout:  *adaptHoldout,
				Fraction: *adaptFraction,
			})
		}},
		{"E16", func(ctx context.Context, env *bench.Env) (*bench.Report, error) {
			var counts []int
			for _, s := range strings.Split(*shardsFlag, ",") {
				s = strings.TrimSpace(s)
				if s == "" {
					continue
				}
				var v int
				if _, err := fmt.Sscanf(s, "%d", &v); err != nil || v < 1 {
					return nil, fmt.Errorf("bad -shards entry %q", s)
				}
				counts = append(counts, v)
			}
			return bench.E16Sharding(ctx, env, counts, *repeatFlag)
		}},
		{"E17", func(ctx context.Context, env *bench.Env) (*bench.Report, error) {
			var counts []int
			for _, s := range strings.Split(*workersFlag, ",") {
				s = strings.TrimSpace(s)
				if s == "" {
					continue
				}
				var v int
				if _, err := fmt.Sscanf(s, "%d", &v); err != nil || v < 1 {
					return nil, fmt.Errorf("bad -workers entry %q", s)
				}
				counts = append(counts, v)
			}
			return bench.E17Pooling(ctx, env, counts, *repeatFlag)
		}},
	}

	for _, r := range runners {
		if !want[r.id] {
			continue
		}
		// Fresh environment per experiment: E2 mutates the catalog (drift)
		// and models must never leak across experiments.
		env, err := bench.NewEnv(*datasetFlag, sc, *seedFlag)
		if err != nil {
			fatal(err)
		}
		env.Ex.NoVec = *novecFlag
		env.Ex.NoPool = *nopoolFlag
		start := time.Now()
		rep, err := r.run(ctx, env)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.id, err))
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s completed in %s)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lqo-bench:", err)
	os.Exit(1)
}
