// Command lqo-lint is the workbench's invariant multichecker: twelve
// custom analyzers (cardclamp, guardsafe, ctxprop, atomicpub,
// determinism, floateq, keycanon, poolret, bufown, gojoin, passpure,
// errflow) plus the lintignore suppression policer, run over every
// package of the module. The last four are path-sensitive: they build a
// per-function CFG and run a dataflow solver (internal/lint/analysis)
// instead of pattern-matching the AST. See DESIGN.md "Static invariants"
// for the contract each analyzer encodes.
//
// Usage:
//
//	lqo-lint            # lint the enclosing module (same as ./...)
//	lqo-lint ./...      # ditto
//	lqo-lint <dir>      # lint a stand-alone fixture package directory
//	lqo-lint -list      # print the registered analyzers
//	lqo-lint -json .    # one JSON diagnostic per line, suppressed included
//
// Exit status is 0 when clean, 1 when any unsuppressed diagnostic is
// reported, and 2 on usage or load errors (including matching zero
// packages).
package main

import (
	"os"

	"lqo/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
