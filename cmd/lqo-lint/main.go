// Command lqo-lint is the workbench's invariant multichecker: six custom
// analyzers (cardclamp, guardsafe, ctxprop, atomicpub, determinism,
// floateq) plus the lintignore suppression policer, run over every
// package of the module. See DESIGN.md "Static invariants" for the
// contract each analyzer encodes.
//
// Usage:
//
//	lqo-lint            # lint the enclosing module (same as ./...)
//	lqo-lint ./...      # ditto
//	lqo-lint <dir>      # lint a stand-alone fixture package directory
//	lqo-lint -list      # print the registered analyzers
//
// Exit status is 0 when clean, 1 when any diagnostic is reported, and 2
// on usage or load errors (including matching zero packages).
package main

import (
	"os"

	"lqo/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
