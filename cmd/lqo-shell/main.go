// Command lqo-shell is an interactive SQL shell over a generated benchmark
// database, with optional learned-optimizer drivers deployed through the
// PilotScope middleware.
//
//	$ go run ./cmd/lqo-shell -dataset stats
//	lqo> \tables
//	lqo> \schema posts
//	lqo> SELECT COUNT(*) FROM posts WHERE posts.score > 10;
//	lqo> EXPLAIN SELECT SUM(p.views) FROM posts p, users u WHERE p.owner_user_id = u.id;
//	lqo> \driver bao
//	lqo> \q
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"lqo/internal/cardest"
	"lqo/internal/data"
	"lqo/internal/datagen"
	"lqo/internal/pilotscope"
	"lqo/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "stats", "dataset: stats | job | tpch")
		scale   = flag.Float64("scale", 0.1, "data scale factor")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var cat *data.Catalog
	switch *dataset {
	case "stats":
		cat = datagen.StatsCEB(datagen.Config{Seed: *seed, Scale: *scale})
	case "job":
		cat = datagen.JOBLite(datagen.Config{Seed: *seed, Scale: *scale})
	case "tpch":
		cat = datagen.TPCHLite(datagen.Config{Seed: *seed, Scale: *scale})
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(1)
	}
	eng, err := pilotscope.NewEngine(cat, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	console := pilotscope.NewConsole(eng, *seed)
	registerDrivers(console, cat, *seed)

	fmt.Printf("lqo shell — dataset=%s (%d tables, %d rows). \\? for help.\n",
		*dataset, len(cat.TableNames()), cat.TotalRows())
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("lqo> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !dispatch(console, eng, cat, line) {
			return
		}
		fmt.Print("lqo> ")
	}
}

// registerDrivers makes the sample drivers available and registers a
// training workload for them.
func registerDrivers(console *pilotscope.Console, cat *data.Catalog, seed int64) {
	qs := workload.GenWorkload(cat, workload.Options{Seed: seed, Count: 40, MaxJoins: 3, MaxPreds: 3})
	var sqls []string
	for _, q := range qs {
		sqls = append(sqls, q.SQL())
	}
	console.SetWorkload(sqls)
	console.RegisterDriver(pilotscope.NewBaoDriver())
	console.RegisterDriver(pilotscope.NewLeroDriver())
	console.RegisterDriver(pilotscope.NewCardEstDriver(cardest.NewGBDTEstimator()))
}

// dispatch handles one input line; it returns false to exit the shell.
func dispatch(console *pilotscope.Console, eng *pilotscope.Engine, cat *data.Catalog, line string) bool {
	switch {
	case line == `\q` || strings.EqualFold(line, "exit") || strings.EqualFold(line, "quit"):
		return false
	case line == `\?` || line == "help":
		fmt.Println(`commands:
  <SQL>;                 execute (COUNT/SUM/AVG/MIN/MAX over SPJ queries)
  EXPLAIN <SQL>;         show the chosen plan without executing
  EXPLAIN ANALYZE <SQL>; execute and show per-operator est vs actual rows,
                         work units and wall time
  \tables                list tables
  \schema <table>        show a table's columns and indexes
  \driver <name>|off     deploy a learned driver (trains on first use)
  \drivers               list registered drivers
  \q                     quit`)
	case line == `\tables`:
		for _, tn := range cat.TableNames() {
			fmt.Printf("  %-16s %8d rows\n", tn, cat.Table(tn).NumRows())
		}
	case strings.HasPrefix(line, `\schema `):
		name := strings.TrimSpace(strings.TrimPrefix(line, `\schema `))
		t := cat.Table(name)
		if t == nil {
			fmt.Printf("no table %q\n", name)
			break
		}
		for _, c := range t.Cols {
			idx := ""
			if t.Index(c.Name) != nil {
				idx = "  [indexed]"
			}
			fmt.Printf("  %-20s %s%s\n", c.Name, c.Kind, idx)
		}
	case line == `\drivers`:
		for _, d := range console.Drivers() {
			marker := " "
			if console.ActiveDriver() == d {
				marker = "*"
			}
			fmt.Printf("  %s %s\n", marker, d)
		}
	case strings.HasPrefix(line, `\driver`):
		name := strings.TrimSpace(strings.TrimPrefix(line, `\driver`))
		if name == "off" || name == "" {
			if err := console.StopTask(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("driver off — native optimizer")
			}
			break
		}
		fmt.Printf("training %s on the registered workload...\n", name)
		if err := console.StartTask(context.Background(), name); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("driver %s active\n", name)
		}
	case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN ANALYZE "):
		sql := line[len("EXPLAIN ANALYZE "):]
		rendered, res, err := eng.ExplainAnalyze(context.Background(), &pilotscope.Session{}, sql)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(rendered)
		fmt.Printf("result: %v (%d rows aggregated, %.0f work units)\n", res.Value, res.Count, res.Latency)
	case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN "):
		sql := line[len("EXPLAIN "):]
		rendered, err := eng.Explain(context.Background(), &pilotscope.Session{}, sql)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(rendered)
	default:
		res, err := console.ExecuteSQL(context.Background(), line)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("%v\n(%d rows aggregated, %.0f work units)\n", res.Value, res.Count, res.Latency)
	}
	return true
}
