# lqo build & verification tiers.
#
#   make build   — compile everything
#   make test    — tier-1: the fast correctness suite
#   make race    — full suite under the race detector
#   make verify  — what CI runs: build + vet + tests + race
#   make bench   — regenerate every experiment table (E1..E9)

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: build vet test race

bench:
	$(GO) run ./cmd/lqo-bench -exp all
