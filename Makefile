# lqo build & verification tiers.
#
#   make build   — compile everything
#   make test    — tier-1: the fast correctness suite
#   make lint    — lqolint: the repo's invariant analyzers (cmd/lqo-lint)
#   make race    — full suite under the race detector
#   make fuzz    — short fuzz smoke over the SQL parser and key encoding
#   make verify  — what CI runs: build + vet + lint + tests + race + fuzz
#                  smoke, then staticcheck & govulncheck (skipped offline)
#   make bench   — regenerate every experiment table (E1..E10, E13..E17)
#   make bench-smoke — compile-and-run every Go benchmark once (no timing)
#   make load-smoke  — E14 sustained-load smoke through the serving layer
#   make drift-smoke — E15 closed-loop adaptation under staged drift
#   make shard-smoke — E16 sharded scatter-gather vs the unsharded reference
#   make pool-smoke  — E17 pooled vs per-run allocation, identity-checked
#   make chaos   — E10 only: guardrail runtime under fault injection

GO ?= go

# Third-party checkers, pinned and run straight from the module proxy so
# no binary needs to be vendored or installed. Offline environments skip
# them gracefully (the resolve step fails, not the check).
STATICCHECK_MOD ?= honnef.co/go/tools
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_MOD ?= golang.org/x/vuln
GOVULNCHECK_VERSION ?= v1.1.3

FUZZTIME ?= 10s

.PHONY: build test vet lint staticcheck govulncheck race fuzz verify bench bench-smoke load-smoke drift-smoke shard-smoke pool-smoke chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The custom invariant suite: cardclamp, guardsafe, ctxprop, atomicpub,
# determinism, floateq, keycanon, poolret, plus the CFG/dataflow quartet
# bufown, gojoin, passpure, errflow, policed by lintignore. Exit 2
# (including "matched no packages") fails the build just like findings
# do. CI wraps this in `timeout 60`: the whole-tree run is expected to
# finish in seconds, and a hung dataflow solve must fail, not stall CI.
lint:
	$(GO) run ./cmd/lqo-lint ./...

# staticcheck and govulncheck need the module proxy (and, for the vuln
# DB, the network). Probe with `go mod download` first so an offline run
# skips with a notice instead of failing on the fetch.
staticcheck:
	@if $(GO) mod download $(STATICCHECK_MOD)@$(STATICCHECK_VERSION) >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK_MOD)/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck: $(STATICCHECK_MOD)@$(STATICCHECK_VERSION) unavailable (offline?); skipping"; \
	fi

govulncheck:
	@if $(GO) mod download $(GOVULNCHECK_MOD)@$(GOVULNCHECK_VERSION) >/dev/null 2>&1; then \
		$(GO) run $(GOVULNCHECK_MOD)/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; \
	else \
		echo "govulncheck: $(GOVULNCHECK_MOD)@$(GOVULNCHECK_VERSION) unavailable (offline?); skipping"; \
	fi

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/sqlx/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sqlx/ -run '^$$' -fuzz FuzzKeyUniqueness -fuzztime $(FUZZTIME)

verify: build vet lint test race fuzz staticcheck govulncheck

bench:
	$(GO) run ./cmd/lqo-bench -exp all

# One iteration of every benchmark — catches bit-rotted benchmark code
# without paying for real measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/exec/ ./internal/bench/

# A short E14 run: the serving layer under open-loop load. Fails loudly
# if cached results diverge from uncached baselines or serving errors.
load-smoke:
	$(GO) run ./cmd/lqo-bench -exp E14 -load-qps 100 -load-dur 3s

# A short E15 run: the closed adaptation loop over a drifting catalog.
# Fails loudly if the loop errors; the printed table shows whether the
# adaptive arm held its GMRL while the frozen baseline degraded.
drift-smoke:
	$(GO) run ./cmd/lqo-bench -exp E15 -adapt-stages 2

# A short E16 run: the shard-scans rewrite plus scatter-gather execution
# at fan-outs 1/2/4. Fails loudly if any sharded run's Count, Value or
# charged WorkUnits diverge from the serial ReferenceRun.
shard-smoke:
	$(GO) run ./cmd/lqo-bench -exp E16 -shards 1,2,4 -repeat 2

# A short E17 run: the pooled hot path vs per-run allocation at worker
# counts 1/8. Fails loudly if any run's Count, Value or CostStats
# diverge from the serial ReferenceRun, pooled or not.
pool-smoke:
	$(GO) run ./cmd/lqo-bench -exp E17 -workers 1,8 -repeat 3

chaos:
	$(GO) run ./cmd/lqo-bench -chaos
