# lqo build & verification tiers.
#
#   make build   — compile everything
#   make test    — tier-1: the fast correctness suite
#   make race    — full suite under the race detector
#   make fuzz    — short fuzz smoke over the SQL parser
#   make verify  — what CI runs: build + vet + tests + race + fuzz smoke
#   make bench   — regenerate every experiment table (E1..E10, E13)
#   make bench-smoke — compile-and-run every Go benchmark once (no timing)
#   make chaos   — E10 only: guardrail runtime under fault injection

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test vet race fuzz verify bench bench-smoke chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/sqlx/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)

verify: build vet test race fuzz

bench:
	$(GO) run ./cmd/lqo-bench -exp all

# One iteration of every benchmark — catches bit-rotted benchmark code
# without paying for real measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/exec/ ./internal/bench/

chaos:
	$(GO) run ./cmd/lqo-bench -chaos
