// Quickstart: load a benchmark database, parse SQL, optimize it with the
// traditional volcano-style optimizer, execute the plan, and inspect true
// vs. estimated cardinalities — the loop every learned component in the
// workbench plugs into.
package main

import (
	"fmt"
	"log"

	"lqo/internal/cardest"
	"lqo/internal/cost"
	"lqo/internal/datagen"
	"lqo/internal/exec"
	"lqo/internal/opt"
	"lqo/internal/sqlx"
	"lqo/internal/stats"
)

func main() {
	// 1. Generate the STATS-like benchmark database (Zipf skew, correlated
	//    attributes, FK fan-out — everything that defeats independence
	//    assumptions).
	cat := datagen.StatsCEB(datagen.Config{Seed: 1, Scale: 0.1})
	fmt.Printf("database: %d tables, %d rows\n", len(cat.TableNames()), cat.TotalRows())

	// 2. Collect statistics and assemble the native optimizer.
	cs := stats.CollectCatalog(cat, stats.Options{Seed: 1})
	hist := cardest.NewHistogramEstimator()
	if err := hist.Train(&cardest.Context{Cat: cat, Stats: cs, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	optimizer := opt.New(cat, cost.New(cs), hist)
	executor := exec.New(cat)

	// 3. Parse a join query.
	sql := `SELECT COUNT(*) FROM users u, posts p, comments c
	        WHERE p.owner_user_id = u.id AND c.post_id = p.id
	          AND u.reputation > 500 AND p.score >= 2;`
	q, err := sqlx.Parse(sql, cat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery:", q.SQL())

	// 4. Optimize and execute.
	p, err := optimizer.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	res, err := executor.Run(q, p)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Inspect the plan: estimated vs. true cardinality per node is the
	//    raw material of the entire learned-optimizer field.
	fmt.Println("\nchosen plan (est = histogram estimate, true = executed):")
	fmt.Print(p)
	fmt.Printf("\nresult: COUNT(*) = %d, measured work = %.0f units\n", res.Count, res.Stats.WorkUnits)
	fmt.Printf("root misestimate: %0.1fx\n", qerr(p.EstCard, p.TrueCard))
}

func qerr(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}
