// Steering: deploy the Bao driver through the PilotScope middleware and
// watch hint-set steering change plans — the tutorial's Section 3.2
// walk-through in code. The database user only ever calls ExecuteSQL.
package main

import (
	"context"
	"fmt"
	"log"

	"lqo/internal/datagen"
	"lqo/internal/pilotscope"
	"lqo/internal/workload"
)

func main() {
	cat := datagen.JOBLite(datagen.Config{Seed: 3, Scale: 0.1})
	eng, err := pilotscope.NewEngine(cat, 3)
	if err != nil {
		log.Fatal(err)
	}
	console := pilotscope.NewConsole(eng, 3)

	qs := workload.GenWorkload(cat, workload.Options{Seed: 3, Count: 60, MaxJoins: 3, MaxPreds: 2})
	var sqls []string
	for _, q := range qs {
		sqls = append(sqls, q.SQL())
	}
	console.SetWorkload(sqls[:40])

	// Deploy Bao: Init executes the registered workload under every hint
	// arm through push/pull, trains the value model, and from then on
	// every ExecuteSQL is steered transparently.
	bao := pilotscope.NewBaoDriver()
	console.RegisterDriver(bao)
	if err := console.StartTask(context.Background(), "bao"); err != nil {
		log.Fatal(err)
	}

	// Find a test query where steering actually changes the plan. Native
	// comparisons go straight to the engine; the console keeps the trained
	// driver active throughout.
	for _, probe := range sqls[40:] {
		natRes, err := eng.ExecuteSQL(context.Background(), &pilotscope.Session{}, probe)
		if err != nil {
			log.Fatal(err)
		}
		steered, err := console.ExecuteSQL(context.Background(), probe)
		if err != nil {
			log.Fatal(err)
		}
		if steered.Plan.Fingerprint() == natRes.Plan.Fingerprint() {
			continue // Bao agreed with the native optimizer; next query.
		}
		fmt.Println("query:", probe)
		fmt.Println("\nnative plan:")
		fmt.Print(natRes.Plan)
		fmt.Println("\nBao-steered plan:")
		fmt.Print(steered.Plan)
		fmt.Printf("\nlatency (work units): native %.0f → steered %.0f\n",
			natRes.Latency, steered.Latency)
		if steered.Count != natRes.Count {
			log.Fatalf("steering changed the result: %d vs %d", steered.Count, natRes.Count)
		}
		fmt.Println("results identical — steering only changed the plan.")
		return
	}
	fmt.Println("Bao agreed with the native optimizer on every test query —")
	fmt.Println("on this workload the native plans were already predicted fastest.")
}
