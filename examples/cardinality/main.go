// Cardinality: train one estimator from every Table 1 class on the same
// labeled workload and compare held-out q-errors — a miniature of
// experiment E1 showing the query-driven / data-driven / hybrid trade-off.
package main

import (
	"fmt"
	"log"

	"lqo/internal/cardest"
	"lqo/internal/datagen"
	"lqo/internal/exec"
	"lqo/internal/metrics"
	"lqo/internal/stats"
	"lqo/internal/workload"
)

func main() {
	cat := datagen.StatsCEB(datagen.Config{Seed: 11, Scale: 0.1})
	cs := stats.CollectCatalog(cat, stats.Options{Seed: 11})
	cache := exec.NewCardCache(exec.New(cat))

	labeled, err := workload.GenLabeled(cat, cache, workload.Options{
		Seed: 11, Count: 150, MaxJoins: 3, MaxPreds: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := labeled[:100], labeled[100:]
	samples := make([]cardest.Sample, len(train))
	for i, l := range train {
		samples[i] = cardest.Sample{Q: l.Q, Card: l.Card}
	}
	ctx := &cardest.Context{Cat: cat, Stats: cs, Train: samples, Seed: 11}

	fmt.Printf("%-12s %-12s %8s %8s %8s\n", "class", "estimator", "p50", "p95", "max")
	for _, name := range []string{"histogram", "mscn", "gbdt", "spn", "factorjoin", "uae"} {
		est, err := cardest.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := est.Train(ctx); err != nil {
			log.Fatal(err)
		}
		var qerrs []float64
		for _, l := range test {
			qerrs = append(qerrs, metrics.QError(est.Estimate(l.Q), l.Card))
		}
		s := metrics.Summarize(qerrs)
		class := "?"
		for _, inf := range cardest.Registry() {
			if inf.Name == name {
				class = string(inf.Class)
			}
		}
		fmt.Printf("%-12s %-12s %8.2f %8.1f %8.0f\n", class, name, s.P50, s.P95, s.Max)
	}
	fmt.Println("\nq-error = max(est/true, true/est) on 50 held-out queries.")
	fmt.Println("run `lqo-bench -exp E1` for the full 18-estimator matrix.")
}
