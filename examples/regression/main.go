// Regression: show a learned optimizer regressing on individual queries
// and Eraser eliminating those regressions as a plugin — Section 2.2.2 of
// the tutorial in ~80 lines.
package main

import (
	"fmt"
	"log"

	"lqo/internal/cardest"
	"lqo/internal/cost"
	"lqo/internal/datagen"
	"lqo/internal/exec"
	"lqo/internal/learnedopt"
	"lqo/internal/opt"
	"lqo/internal/query"
	"lqo/internal/stats"
	"lqo/internal/workload"
)

func main() {
	cat := datagen.StatsCEB(datagen.Config{Seed: 21, Scale: 0.06})
	cs := stats.CollectCatalog(cat, stats.Options{Seed: 21})
	ex := exec.New(cat)
	hist := cardest.NewHistogramEstimator()
	if err := hist.Train(&cardest.Context{Cat: cat, Stats: cs, Seed: 21}); err != nil {
		log.Fatal(err)
	}
	base := opt.New(cat, cost.New(cs), hist)

	labeled, err := workload.GenLabeled(cat, exec.NewCardCache(ex), workload.Options{
		Seed: 21, Count: 90, MaxJoins: 3, MaxPreds: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	var train, test = queries(labeled[:60]), queries(labeled[60:])
	ctx := &learnedopt.Context{Cat: cat, Stats: cs, Ex: ex, Base: base, Workload: train, Seed: 21}

	// The learned optimizer: Bao with the paper's tree-convolution value
	// model, which regresses more readily at small training scale.
	bao := learnedopt.NewBaoTreeConv()
	if err := bao.Train(ctx); err != nil {
		log.Fatal(err)
	}
	// Eraser wraps the SAME trained model.
	eraser := learnedopt.NewEraser(bao)
	eraser.InnerTrained = true
	if err := eraser.Train(ctx); err != nil {
		log.Fatal(err)
	}

	native := learnedopt.NewNative()
	if err := native.Train(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-4s %12s %12s %12s %9s\n", "q#", "native", "bao", "eraser+bao", "bao rel")
	var regBao, regEraser int
	for i, q := range test {
		nat := run(ctx, native, q)
		bo := run(ctx, bao, q)
		er := run(ctx, eraser, q)
		rel := bo / nat
		if rel > 1.2 {
			regBao++
		}
		if er/nat > 1.2 {
			regEraser++
		}
		marker := ""
		if rel > 1.2 {
			marker = "  ← regression"
		}
		fmt.Printf("%-4d %12.0f %12.0f %12.0f %8.2fx%s\n", i, nat, bo, er, rel, marker)
	}
	fmt.Printf("\nregressions >20%%: bao=%d, eraser+bao=%d\n", regBao, regEraser)
}

func queries(ls []workload.Labeled) []*query.Query {
	out := make([]*query.Query, len(ls))
	for i, l := range ls {
		out[i] = l.Q
	}
	return out
}

func run(ctx *learnedopt.Context, o learnedopt.Optimizer, q *query.Query) float64 {
	p, err := o.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	lat, err := learnedopt.Measure(ctx.Ex, q, p)
	if err != nil {
		log.Fatal(err)
	}
	return lat
}
